//! Trace diffing: explain *why* run B is faster or slower than run A.
//!
//! [`diff_reports`] aligns two [`AttributionReport`]s by invocation id and
//! attributes every matched invocation's latency delta to the eleven
//! phases.
//! Because each side's phases sum exactly to its end-to-end latency, the
//! phase deltas sum exactly to the latency delta — the diff attributes
//! 100 % of the movement to named mechanisms, never to an unexplained
//! residual. [`TraceDiff::render`] prints the ranked report behind
//! `faasbatch trace-diff`; the struct serializes for the `--json` output.

use super::attribution::{AttributionReport, InvocationAttribution, Phase, PhaseBreakdown};
use faasbatch_container::ids::{FunctionId, InvocationId};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Signed per-phase latency movement in microseconds (B − A; negative =
/// B improved).
///
/// Mirrors [`PhaseBreakdown`] field-for-field so deltas can be summed and
/// rendered with the same phase vocabulary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PhaseDelta {
    /// [`Phase::RetryDelay`] movement.
    pub retry_delay: i64,
    /// [`Phase::GatewayQueue`] movement.
    pub gateway_queue: i64,
    /// [`Phase::WindowWait`] movement.
    pub window_wait: i64,
    /// [`Phase::Dispatch`] movement.
    pub dispatch: i64,
    /// [`Phase::ColdStart`] movement.
    pub cold_start: i64,
    /// [`Phase::Restore`] movement.
    pub restore: i64,
    /// [`Phase::Queue`] movement.
    pub queue: i64,
    /// [`Phase::MuxWait`] movement.
    pub mux_wait: i64,
    /// [`Phase::Execution`] movement.
    pub execution: i64,
    /// [`Phase::CpuContention`] movement.
    pub cpu_contention: i64,
    /// [`Phase::Barrier`] movement.
    pub barrier: i64,
}

impl PhaseDelta {
    /// B − A, phase by phase.
    pub fn between(a: &PhaseBreakdown, b: &PhaseBreakdown) -> PhaseDelta {
        let mut delta = PhaseDelta::default();
        for &phase in &Phase::ALL {
            *delta.get_mut(phase) =
                b.get(phase).as_micros() as i64 - a.get(phase).as_micros() as i64;
        }
        delta
    }

    /// Movement of one phase (µs, signed).
    pub fn get(&self, phase: Phase) -> i64 {
        match phase {
            Phase::RetryDelay => self.retry_delay,
            Phase::GatewayQueue => self.gateway_queue,
            Phase::WindowWait => self.window_wait,
            Phase::Dispatch => self.dispatch,
            Phase::ColdStart => self.cold_start,
            Phase::Restore => self.restore,
            Phase::Queue => self.queue,
            Phase::MuxWait => self.mux_wait,
            Phase::Execution => self.execution,
            Phase::CpuContention => self.cpu_contention,
            Phase::Barrier => self.barrier,
        }
    }

    /// Mutable access by phase.
    pub fn get_mut(&mut self, phase: Phase) -> &mut i64 {
        match phase {
            Phase::RetryDelay => &mut self.retry_delay,
            Phase::GatewayQueue => &mut self.gateway_queue,
            Phase::WindowWait => &mut self.window_wait,
            Phase::Dispatch => &mut self.dispatch,
            Phase::ColdStart => &mut self.cold_start,
            Phase::Restore => &mut self.restore,
            Phase::Queue => &mut self.queue,
            Phase::MuxWait => &mut self.mux_wait,
            Phase::Execution => &mut self.execution,
            Phase::CpuContention => &mut self.cpu_contention,
            Phase::Barrier => &mut self.barrier,
        }
    }

    /// Sum of all phase movements — exactly the end-to-end delta.
    pub fn total(&self) -> i64 {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }

    /// Accumulates another delta (for per-function / overall totals).
    pub fn accumulate(&mut self, other: &PhaseDelta) {
        for &phase in &Phase::ALL {
            *self.get_mut(phase) += other.get(phase);
        }
    }

    /// The phase with the largest absolute movement.
    pub fn dominant(&self) -> Phase {
        let mut best = Phase::ALL[0];
        for &p in &Phase::ALL[1..] {
            if self.get(p).abs() > self.get(best).abs() {
                best = p;
            }
        }
        best
    }

    /// True when no phase moved.
    pub fn is_zero(&self) -> bool {
        Phase::ALL.iter().all(|&p| self.get(p) == 0)
    }
}

/// One matched invocation's latency movement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct InvocationDelta {
    /// The invocation (same id on both sides).
    pub id: InvocationId,
    /// Its function.
    pub function: FunctionId,
    /// End-to-end movement in µs (B − A; negative = improved).
    pub delta_micros: i64,
    /// Where the movement came from.
    pub phases: PhaseDelta,
}

impl InvocationDelta {
    fn between(a: &InvocationAttribution, b: &InvocationAttribution) -> InvocationDelta {
        InvocationDelta {
            id: a.id,
            function: a.function,
            delta_micros: b.end_to_end().as_micros() as i64 - a.end_to_end().as_micros() as i64,
            phases: PhaseDelta::between(&a.phases, &b.phases),
        }
    }
}

/// Per-function aggregate movement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FunctionDelta {
    /// The function.
    pub function: FunctionId,
    /// Matched invocations.
    pub count: usize,
    /// Mean end-to-end movement (µs, signed).
    pub mean_delta_micros: i64,
    /// Mean per-phase movement (µs, signed).
    pub mean_phases: PhaseDelta,
}

/// Shift of one latency quantile between the runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuantileShift {
    /// Label ("p50", "p99", "mean", …).
    pub label: String,
    /// Run A's value in µs.
    pub a_micros: u64,
    /// Run B's value in µs.
    pub b_micros: u64,
}

impl QuantileShift {
    /// Signed movement (µs).
    pub fn delta(&self) -> i64 {
        self.b_micros as i64 - self.a_micros as i64
    }
}

/// The full A-vs-B explanation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceDiff {
    /// Invocations present in both runs, in id order.
    pub matched: Vec<InvocationDelta>,
    /// Ids only run A completed.
    pub only_a: Vec<InvocationId>,
    /// Ids only run B completed.
    pub only_b: Vec<InvocationId>,
    /// Mean end-to-end movement across matched invocations (µs, signed).
    pub mean_delta_micros: i64,
    /// Mean per-phase movement (µs, signed); sums to `mean_delta_micros`
    /// up to integer-division rounding.
    pub mean_phases: PhaseDelta,
    /// Per-function movement, ordered by function id.
    pub per_function: Vec<FunctionDelta>,
    /// Latency quantile shifts (mean, p50, p90, p99).
    pub quantiles: Vec<QuantileShift>,
}

impl TraceDiff {
    /// True when nothing moved and no invocation is unmatched — a log
    /// diffed against itself reports this.
    pub fn is_zero(&self) -> bool {
        self.only_a.is_empty()
            && self.only_b.is_empty()
            && self
                .matched
                .iter()
                .all(|m| m.delta_micros == 0 && m.phases.is_zero())
    }

    /// The matched invocations with the largest absolute movement,
    /// biggest first.
    pub fn top_movers(&self, k: usize) -> Vec<&InvocationDelta> {
        let mut movers: Vec<&InvocationDelta> = self.matched.iter().collect();
        movers.sort_by_key(|m| std::cmp::Reverse(m.delta_micros.abs()));
        movers.truncate(k);
        movers
    }

    /// Fraction of the total absolute movement explained by the named
    /// phases (always 1.0 when every attribution is exact — kept as an
    /// explicit check because ISSUE acceptance demands ≥ 0.9).
    pub fn attributed_fraction(&self) -> f64 {
        let total: i64 = self.matched.iter().map(|m| m.delta_micros.abs()).sum();
        if total == 0 {
            return 1.0;
        }
        let explained: i64 = self
            .matched
            .iter()
            .map(|m| m.delta_micros.abs() - (m.delta_micros - m.phases.total()).abs())
            .sum();
        explained as f64 / total as f64
    }

    /// The ranked human-readable report behind `faasbatch trace-diff`.
    pub fn render(&self, a_name: &str, b_name: &str, top_k: usize) -> String {
        let ms = |us: i64| us as f64 / 1_000.0;
        let mut out = String::new();
        let _ = writeln!(out, "trace-diff: {a_name} (A) vs {b_name} (B)");
        let _ = writeln!(
            out,
            "matched {} invocation(s); only-A {}, only-B {}",
            self.matched.len(),
            self.only_a.len(),
            self.only_b.len()
        );
        if self.matched.is_empty() {
            let _ = writeln!(out, "no overlapping invocations — nothing to attribute");
            return out;
        }
        let verdict = match self.mean_delta_micros {
            d if d < 0 => "B is faster",
            0 => "no mean movement",
            _ => "B is slower",
        };
        let _ = writeln!(
            out,
            "mean end-to-end delta: {:+.3} ms ({verdict}); {:.1}% attributed to phases",
            ms(self.mean_delta_micros),
            100.0 * self.attributed_fraction()
        );

        let _ = writeln!(out, "\nquantile shifts (A → B):");
        for q in &self.quantiles {
            let _ = writeln!(
                out,
                "  {:<5} {:>10.3} ms → {:>10.3} ms  ({:+.3} ms)",
                q.label,
                q.a_micros as f64 / 1_000.0,
                q.b_micros as f64 / 1_000.0,
                ms(q.delta())
            );
        }

        let _ = writeln!(out, "\nmean phase deltas (negative = B improved):");
        let mut ranked: Vec<Phase> = Phase::ALL.to_vec();
        ranked.sort_by_key(|&p| std::cmp::Reverse(self.mean_phases.get(p).abs()));
        for phase in ranked {
            let d = self.mean_phases.get(phase);
            if d == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<15} {:+12.3} ms  → {}",
                phase.name(),
                ms(d),
                phase.resource()
            );
        }

        let _ = writeln!(out, "\nper-function mean deltas:");
        for f in &self.per_function {
            let _ = writeln!(
                out,
                "  {}  n={:<5} {:+10.3} ms  dominant: {}",
                f.function,
                f.count,
                ms(f.mean_delta_micros),
                f.mean_phases.dominant().name()
            );
        }

        let _ = writeln!(out, "\ntop {} mover(s):", top_k.min(self.matched.len()));
        for m in self.top_movers(top_k) {
            let dom = m.phases.dominant();
            let _ = writeln!(
                out,
                "  {}  {}  {:+10.3} ms  mostly {} ({:+.3} ms)",
                m.id,
                m.function,
                ms(m.delta_micros),
                dom.name(),
                ms(m.phases.get(dom))
            );
        }
        out
    }
}

/// Aligns two attributed runs by invocation id and attributes every
/// latency delta to phases. A is the baseline; deltas are B − A.
pub fn diff_reports(a: &AttributionReport, b: &AttributionReport) -> TraceDiff {
    let index_b: BTreeMap<InvocationId, &InvocationAttribution> =
        b.invocations.iter().map(|x| (x.id, x)).collect();
    let ids_a: std::collections::HashSet<InvocationId> =
        a.invocations.iter().map(|x| x.id).collect();

    let mut matched = Vec::new();
    let mut only_a = Vec::new();
    for x in &a.invocations {
        match index_b.get(&x.id) {
            Some(y) => matched.push(InvocationDelta::between(x, y)),
            None => only_a.push(x.id),
        }
    }
    let only_b: Vec<InvocationId> = b
        .invocations
        .iter()
        .map(|x| x.id)
        .filter(|id| !ids_a.contains(id))
        .collect();

    let n = matched.len() as i64;
    let mut mean_phases = PhaseDelta::default();
    let mut mean_delta_micros = 0;
    if n > 0 {
        let mut total = PhaseDelta::default();
        for m in &matched {
            total.accumulate(&m.phases);
        }
        for &phase in &Phase::ALL {
            *mean_phases.get_mut(phase) = total.get(phase) / n;
        }
        mean_delta_micros = matched.iter().map(|m| m.delta_micros).sum::<i64>() / n;
    }

    let mut by_function: BTreeMap<FunctionId, Vec<&InvocationDelta>> = BTreeMap::new();
    for m in &matched {
        by_function.entry(m.function).or_default().push(m);
    }
    let per_function = by_function
        .into_iter()
        .map(|(function, ms)| {
            let n = ms.len() as i64;
            let mut total = PhaseDelta::default();
            for m in &ms {
                total.accumulate(&m.phases);
            }
            let mut mean = PhaseDelta::default();
            for &phase in &Phase::ALL {
                *mean.get_mut(phase) = total.get(phase) / n;
            }
            FunctionDelta {
                function,
                count: ms.len(),
                mean_delta_micros: ms.iter().map(|m| m.delta_micros).sum::<i64>() / n,
                mean_phases: mean,
            }
        })
        .collect();

    let quantiles = if matched.is_empty() {
        Vec::new()
    } else {
        let cdf_a = a.end_to_end_cdf();
        let cdf_b = b.end_to_end_cdf();
        let mut qs = vec![QuantileShift {
            label: "mean".into(),
            a_micros: cdf_a.mean().as_micros(),
            b_micros: cdf_b.mean().as_micros(),
        }];
        for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
            qs.push(QuantileShift {
                label: label.into(),
                a_micros: cdf_a.quantile(q).as_micros(),
                b_micros: cdf_b.quantile(q).as_micros(),
            });
        }
        qs
    };

    TraceDiff {
        matched,
        only_a,
        only_b,
        mean_delta_micros,
        mean_phases,
        per_function,
        quantiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasbatch_simcore::time::{SimDuration, SimTime};

    fn attribution(id: u64, function: u32, cold_us: u64, exec_us: u64) -> InvocationAttribution {
        InvocationAttribution {
            id: InvocationId::new(id),
            function: FunctionId::new(function),
            container: None,
            batch: None,
            cold: cold_us > 0,
            restored: false,
            retries: 0,
            arrival: SimTime::ZERO,
            completion: SimTime::ZERO + SimDuration::from_micros(cold_us + exec_us),
            phases: PhaseBreakdown {
                cold_start: SimDuration::from_micros(cold_us),
                execution: SimDuration::from_micros(exec_us),
                ..PhaseBreakdown::default()
            },
        }
    }

    fn report(attrs: Vec<InvocationAttribution>) -> AttributionReport {
        AttributionReport {
            invocations: attrs,
            skipped: 0,
            unfinished: 0,
        }
    }

    #[test]
    fn self_diff_is_zero() {
        let a = report(vec![
            attribution(1, 0, 5_000, 1_000),
            attribution(2, 1, 0, 900),
        ]);
        let d = diff_reports(&a, &a);
        assert!(d.is_zero());
        assert_eq!(d.mean_delta_micros, 0);
        assert!((d.attributed_fraction() - 1.0).abs() < 1e-12);
        let text = d.render("a", "a", 5);
        assert!(text.contains("matched 2 invocation(s)"));
    }

    #[test]
    fn cold_start_removal_is_attributed_to_cold_start() {
        // A pays a 5 ms cold start run B avoids.
        let a = report(vec![attribution(1, 0, 5_000, 1_000)]);
        let b = report(vec![attribution(1, 0, 0, 1_000)]);
        let d = diff_reports(&a, &b);
        assert_eq!(d.mean_delta_micros, -5_000);
        assert_eq!(d.mean_phases.cold_start, -5_000);
        assert_eq!(d.mean_phases.execution, 0);
        assert_eq!(d.matched[0].phases.dominant(), Phase::ColdStart);
        assert_eq!(d.matched[0].phases.total(), d.matched[0].delta_micros);
        assert!((d.attributed_fraction() - 1.0).abs() < 1e-12);
        assert!(d.render("vanilla", "faasbatch", 3).contains("B is faster"));
    }

    #[test]
    fn unmatched_invocations_are_listed_not_attributed() {
        let a = report(vec![
            attribution(1, 0, 0, 1_000),
            attribution(2, 0, 0, 1_000),
        ]);
        let b = report(vec![attribution(2, 0, 0, 1_500), attribution(3, 0, 0, 700)]);
        let d = diff_reports(&a, &b);
        assert_eq!(d.matched.len(), 1);
        assert_eq!(d.only_a, vec![InvocationId::new(1)]);
        assert_eq!(d.only_b, vec![InvocationId::new(3)]);
        assert_eq!(d.matched[0].delta_micros, 500);
        assert!(!d.is_zero());
    }

    #[test]
    fn top_movers_rank_by_absolute_delta() {
        let a = report(vec![
            attribution(1, 0, 0, 1_000),
            attribution(2, 0, 0, 1_000),
            attribution(3, 1, 0, 1_000),
        ]);
        let b = report(vec![
            attribution(1, 0, 0, 1_100),
            attribution(2, 0, 0, 4_000),
            attribution(3, 1, 0, 400),
        ]);
        let d = diff_reports(&a, &b);
        let movers = d.top_movers(2);
        assert_eq!(movers[0].id, InvocationId::new(2));
        assert_eq!(movers[1].id, InvocationId::new(3));
        assert_eq!(d.per_function.len(), 2);
    }
}
