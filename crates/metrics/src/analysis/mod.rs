//! Trace analysis: the layer that turns the event spine into an
//! *explanation*.
//!
//! The event stream (DESIGN.md §11) narrates what happened; this module
//! answers *where the time went* and *why one run beats another* — the
//! paper's headline claims (batching removes cold starts, expansion removes
//! queueing, the multiplexer removes client-creation latency) are exactly
//! such claims. Four submodules:
//!
//! * [`attribution`] — folds a [`SimEvent`](crate::events::SimEvent) stream
//!   (live, as a [`TraceSink`](crate::events::TraceSink), or offline from a
//!   JSONL file) into per-invocation [`PhaseBreakdown`]s that provably sum
//!   to end-to-end latency, plus per-function aggregates and critical-path
//!   extraction (DESIGN.md §13);
//! * [`diff`] — aligns two attributed runs by invocation id and explains
//!   the latency delta phase by phase (`faasbatch trace-diff`);
//! * [`load`] — typed-error JSONL loading for offline analysis;
//! * [`compare`] — the paper-style "X reduces Y by Z %" report comparisons.

pub mod attribution;
pub mod compare;
pub mod diff;
pub mod load;

pub use attribution::{
    AttributionEngine, AttributionReport, FunctionPhaseSummary, InvocationAttribution, Phase,
    PhaseBreakdown,
};
pub use compare::{against_all, Comparison};
pub use diff::{diff_reports, InvocationDelta, PhaseDelta, QuantileShift, TraceDiff};
pub use load::{load_events, parse_events, TraceLoadError};
