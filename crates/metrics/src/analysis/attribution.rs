//! Per-invocation latency attribution from the event stream.
//!
//! [`AttributionEngine`] folds a [`SimEvent`] stream into one
//! [`InvocationAttribution`] per completed invocation: an eleven-phase
//! [`PhaseBreakdown`] whose components *sum exactly* to the recorded
//! end-to-end latency. Exactness is by construction — each phase is the gap
//! between two consecutive timestamps on the invocation's event chain, so
//! the sum telescopes to completion − arrival with no residual
//! (DESIGN.md §13 lists the chain and the phase ↔ event-pair mapping).
//!
//! Two stream shapes are understood:
//!
//! * **single-worker** streams (from `run_simulation_traced` /
//!   `run_faasbatch_traced`) carry the full mechanism chain — window wait,
//!   dispatch work, cold start, in-container queue, multiplexer wait, body
//!   execution with CPU-contention stretch, and the batch-barrier wait;
//! * **fleet-level** streams (from `run_fleet_traced`) are coarser — retry
//!   delay, routing/window wait, and the on-worker remainder — because the
//!   fleet layer narrates routing, not per-worker mechanism.
//!
//! The engine is lenient where the auditor is strict: a truncated log
//! yields attributions for every invocation whose chain is complete and
//! counts the rest, so offline analysis of a partial trace still works.

use crate::events::{EventKind, SimEvent, TaskKind, TraceSink};
use crate::stats::Cdf;
use faasbatch_container::ids::{ContainerId, FunctionId, InvocationId};
use faasbatch_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// A named slice of one invocation's end-to-end latency.
///
/// Phases are listed in pipeline order; [`PhaseBreakdown`] holds one
/// duration per phase and [`PhaseBreakdown::total`] is exactly the
/// invocation's end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Fleet re-dispatch delay after worker crashes (arrival → last retry).
    RetryDelay,
    /// Arrival → the gateway routed the invocation's window group to a
    /// worker (shard ingress-queue residence; zero for streams without a
    /// gateway front door).
    GatewayQueue,
    /// Arrival → the scheduler bound the invocation to a container
    /// (batching-window residence; fleet streams: routing-group formation;
    /// gateway streams: routing → dispatch decision).
    WindowWait,
    /// Daemon-side dispatch/launch processing for the batch.
    Dispatch,
    /// Container cold start the batch waited on (zero when served warm or
    /// restored from a snapshot).
    ColdStart,
    /// Snapshot restore the batch waited on (zero when booted cold or
    /// served warm) — the same decided → ready gap as [`Phase::ColdStart`],
    /// attributed here when the start came from the snapshot tier.
    Restore,
    /// Container ready → this member's chain started (in-container queue;
    /// serial batch members accrue it while predecessors run).
    Queue,
    /// Chain start → body start: multiplexer wait (client creation or
    /// single-flight wait on another member's creation).
    MuxWait,
    /// The body's intrinsic work plus any post-body I/O operation latency.
    Execution,
    /// Body-span stretch beyond the intrinsic work — processor-sharing
    /// slowdown under CPU contention.
    CpuContention,
    /// Own finish → response release (per-batch barrier wait).
    Barrier,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 11] = [
        Phase::RetryDelay,
        Phase::GatewayQueue,
        Phase::WindowWait,
        Phase::Dispatch,
        Phase::ColdStart,
        Phase::Restore,
        Phase::Queue,
        Phase::MuxWait,
        Phase::Execution,
        Phase::CpuContention,
        Phase::Barrier,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::RetryDelay => "retry-delay",
            Phase::GatewayQueue => "gateway-queue",
            Phase::WindowWait => "window-wait",
            Phase::Dispatch => "dispatch",
            Phase::ColdStart => "cold-start",
            Phase::Restore => "restore",
            Phase::Queue => "queue",
            Phase::MuxWait => "mux-wait",
            Phase::Execution => "execution",
            Phase::CpuContention => "cpu-contention",
            Phase::Barrier => "barrier",
        }
    }

    /// The resource a critical phase points at — what to scale or fix when
    /// this phase dominates.
    pub fn resource(self) -> &'static str {
        match self {
            Phase::RetryDelay => "fleet",
            Phase::GatewayQueue => "gateway",
            Phase::WindowWait => "scheduler",
            Phase::Dispatch => "daemon",
            Phase::ColdStart | Phase::Restore => "container",
            Phase::Queue | Phase::CpuContention => "cpu",
            Phase::MuxWait => "multiplexer",
            Phase::Execution => "function",
            Phase::Barrier => "batch",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One duration per [`Phase`]; sums exactly to end-to-end latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// [`Phase::RetryDelay`].
    pub retry_delay: SimDuration,
    /// [`Phase::GatewayQueue`].
    pub gateway_queue: SimDuration,
    /// [`Phase::WindowWait`].
    pub window_wait: SimDuration,
    /// [`Phase::Dispatch`].
    pub dispatch: SimDuration,
    /// [`Phase::ColdStart`].
    pub cold_start: SimDuration,
    /// [`Phase::Restore`].
    #[serde(default)]
    pub restore: SimDuration,
    /// [`Phase::Queue`].
    pub queue: SimDuration,
    /// [`Phase::MuxWait`].
    pub mux_wait: SimDuration,
    /// [`Phase::Execution`].
    pub execution: SimDuration,
    /// [`Phase::CpuContention`].
    pub cpu_contention: SimDuration,
    /// [`Phase::Barrier`].
    pub barrier: SimDuration,
}

impl PhaseBreakdown {
    /// The duration attributed to one phase.
    pub fn get(&self, phase: Phase) -> SimDuration {
        match phase {
            Phase::RetryDelay => self.retry_delay,
            Phase::GatewayQueue => self.gateway_queue,
            Phase::WindowWait => self.window_wait,
            Phase::Dispatch => self.dispatch,
            Phase::ColdStart => self.cold_start,
            Phase::Restore => self.restore,
            Phase::Queue => self.queue,
            Phase::MuxWait => self.mux_wait,
            Phase::Execution => self.execution,
            Phase::CpuContention => self.cpu_contention,
            Phase::Barrier => self.barrier,
        }
    }

    /// Mutable access by phase.
    pub fn get_mut(&mut self, phase: Phase) -> &mut SimDuration {
        match phase {
            Phase::RetryDelay => &mut self.retry_delay,
            Phase::GatewayQueue => &mut self.gateway_queue,
            Phase::WindowWait => &mut self.window_wait,
            Phase::Dispatch => &mut self.dispatch,
            Phase::ColdStart => &mut self.cold_start,
            Phase::Restore => &mut self.restore,
            Phase::Queue => &mut self.queue,
            Phase::MuxWait => &mut self.mux_wait,
            Phase::Execution => &mut self.execution,
            Phase::CpuContention => &mut self.cpu_contention,
            Phase::Barrier => &mut self.barrier,
        }
    }

    /// Sum of every phase — the attributed end-to-end latency.
    pub fn total(&self) -> SimDuration {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }

    /// The longest phase (ties break toward the earlier pipeline phase).
    pub fn critical(&self) -> Phase {
        let mut best = Phase::ALL[0];
        for &p in &Phase::ALL[1..] {
            if self.get(p) > self.get(best) {
                best = p;
            }
        }
        best
    }
}

/// One invocation's attributed latency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvocationAttribution {
    /// The invocation.
    pub id: InvocationId,
    /// Its function.
    pub function: FunctionId,
    /// Container that served it (`None` in fleet-level streams, which do
    /// not narrate container binding).
    pub container: Option<ContainerId>,
    /// Batch it ran in (`None` in fleet-level streams).
    pub batch: Option<u64>,
    /// Whether it waited on a full cold boot (always `false` in fleet
    /// streams).
    pub cold: bool,
    /// Whether it waited on a snapshot restore (mutually exclusive with
    /// `cold`; always `false` in fleet streams).
    #[serde(default)]
    pub restored: bool,
    /// Crash-driven re-dispatches it survived.
    pub retries: u32,
    /// Arrival at the platform.
    pub arrival: SimTime,
    /// Response release.
    pub completion: SimTime,
    /// The phase decomposition.
    pub phases: PhaseBreakdown,
}

impl InvocationAttribution {
    /// End-to-end latency (completion − arrival).
    pub fn end_to_end(&self) -> SimDuration {
        self.completion.saturating_duration_since(self.arrival)
    }

    /// True when the phases sum *exactly* (to the microsecond) to the
    /// end-to-end latency — the attribution invariant.
    pub fn is_exact(&self) -> bool {
        self.phases.total() == self.end_to_end()
    }

    /// The bottleneck: longest phase and the resource it points at.
    pub fn critical_path(&self) -> (Phase, &'static str) {
        let phase = self.phases.critical();
        (phase, phase.resource())
    }
}

/// Per-function aggregate of attributed invocations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FunctionPhaseSummary {
    /// The function.
    pub function: FunctionId,
    /// Invocations attributed.
    pub count: usize,
    /// How many waited on a full cold boot.
    pub cold: usize,
    /// How many waited on a snapshot restore.
    pub restored: usize,
    /// Mean end-to-end latency.
    pub mean_end_to_end: SimDuration,
    /// Per-phase mean durations.
    pub mean: PhaseBreakdown,
    /// The phase that is critical for the most invocations.
    pub critical: Phase,
}

/// Everything the engine derives from one stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct AttributionReport {
    /// Attributions in invocation-id order.
    pub invocations: Vec<InvocationAttribution>,
    /// Completions whose event chain was incomplete (truncated log).
    pub skipped: u64,
    /// Arrivals that never completed (truncated log or lost work).
    pub unfinished: u64,
}

impl AttributionReport {
    /// True when every attribution satisfies the sum-to-total invariant.
    pub fn all_exact(&self) -> bool {
        self.invocations.iter().all(InvocationAttribution::is_exact)
    }

    /// Looks up one invocation's attribution.
    pub fn get(&self, id: InvocationId) -> Option<&InvocationAttribution> {
        self.invocations
            .binary_search_by_key(&id, |a| a.id)
            .ok()
            .map(|i| &self.invocations[i])
    }

    /// Mean duration of each phase across all invocations.
    pub fn mean_phases(&self) -> PhaseBreakdown {
        let n = self.invocations.len() as u64;
        let mut mean = PhaseBreakdown::default();
        if n == 0 {
            return mean;
        }
        for &phase in &Phase::ALL {
            let total: SimDuration = self.invocations.iter().map(|a| a.phases.get(phase)).sum();
            *mean.get_mut(phase) = total / n;
        }
        mean
    }

    /// Distribution of one phase across all invocations (the per-phase
    /// histogram backing Fig.-11-style plots).
    pub fn phase_cdf(&self, phase: Phase) -> Cdf {
        Cdf::from_samples(
            self.invocations
                .iter()
                .map(|a| a.phases.get(phase))
                .collect(),
        )
    }

    /// End-to-end latency distribution.
    pub fn end_to_end_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.invocations
                .iter()
                .map(InvocationAttribution::end_to_end)
                .collect(),
        )
    }

    /// Per-function summaries, ordered by function id.
    pub fn function_summaries(&self) -> Vec<FunctionPhaseSummary> {
        let mut by_function: BTreeMap<FunctionId, Vec<&InvocationAttribution>> = BTreeMap::new();
        for a in &self.invocations {
            by_function.entry(a.function).or_default().push(a);
        }
        by_function
            .into_iter()
            .map(|(function, attrs)| {
                let n = attrs.len() as u64;
                let mut mean = PhaseBreakdown::default();
                for &phase in &Phase::ALL {
                    let total: SimDuration = attrs.iter().map(|a| a.phases.get(phase)).sum();
                    *mean.get_mut(phase) = total / n;
                }
                let e2e: SimDuration = attrs.iter().map(|a| a.end_to_end()).sum();
                let mut census: BTreeMap<Phase, usize> = BTreeMap::new();
                for a in &attrs {
                    *census.entry(a.phases.critical()).or_insert(0) += 1;
                }
                let critical = census
                    .into_iter()
                    .max_by_key(|&(_, n)| n)
                    .map(|(p, _)| p)
                    .unwrap_or(Phase::Execution);
                FunctionPhaseSummary {
                    function,
                    count: attrs.len(),
                    cold: attrs.iter().filter(|a| a.cold).count(),
                    restored: attrs.iter().filter(|a| a.restored).count(),
                    mean_end_to_end: e2e / n,
                    mean,
                    critical,
                }
            })
            .collect()
    }

    /// How often each phase is the per-invocation bottleneck, most common
    /// first.
    pub fn critical_census(&self) -> Vec<(Phase, usize)> {
        let mut census: BTreeMap<Phase, usize> = BTreeMap::new();
        for a in &self.invocations {
            *census.entry(a.phases.critical()).or_insert(0) += 1;
        }
        let mut out: Vec<(Phase, usize)> = census.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Human-readable attribution summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let n = self.invocations.len();
        let _ = writeln!(
            out,
            "attributed {n} invocation(s) ({} skipped, {} unfinished)",
            self.skipped, self.unfinished
        );
        if n == 0 {
            return out;
        }
        let e2e = self.end_to_end_cdf();
        let _ = writeln!(
            out,
            "end-to-end: mean {} | p50 {} | p99 {}",
            e2e.mean(),
            e2e.quantile(0.5),
            e2e.quantile(0.99)
        );
        let mean = self.mean_phases();
        let total = mean.total().as_micros().max(1);
        let _ = writeln!(out, "mean phase breakdown:");
        for &phase in &Phase::ALL {
            let d = mean.get(phase);
            if d.is_zero() {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<15} {:>12} ({:>5.1}%)",
                phase.name(),
                d.to_string(),
                100.0 * d.as_micros() as f64 / total as f64
            );
        }
        let _ = writeln!(out, "critical-path census (bottleneck → resource):");
        for (phase, count) in self.critical_census() {
            let _ = writeln!(
                out,
                "  {:<15} {:>6} invocation(s) → {}",
                phase.name(),
                count,
                phase.resource()
            );
        }
        out
    }
}

/// Per-batch chain state between dispatch and completion.
#[derive(Debug)]
struct BatchChain {
    container: ContainerId,
    cold: bool,
    restored: bool,
    members: Vec<InvocationId>,
    dispatched_at: SimTime,
    decision_done: Option<SimTime>,
    ready: Option<SimTime>,
    exec_start: Vec<Option<SimTime>>,
    body_start: Vec<Option<SimTime>>,
    body_finish: Vec<Option<SimTime>>,
    own_finish: Vec<Option<SimTime>>,
    work: Vec<Option<SimDuration>>,
    completed: usize,
}

/// Streaming fold from events to [`AttributionReport`].
///
/// Implements [`TraceSink`], so it can ride a live run, or be fed an
/// offline stream with [`AttributionEngine::consume`].
#[derive(Debug, Default)]
pub struct AttributionEngine {
    arrivals: HashMap<InvocationId, (SimTime, FunctionId)>,
    batches: HashMap<u64, BatchChain>,
    /// Fleet layer: latest group-formation instant per member.
    group_at: HashMap<InvocationId, SimTime>,
    /// Fleet layer: latest re-dispatch instant and retry count per member.
    redispatch: HashMap<InvocationId, (SimTime, u32)>,
    /// Gateway layer: instant the invocation's group was routed to a worker.
    route_at: HashMap<InvocationId, SimTime>,
    /// Gateway layer: invocations terminally rejected at admission. They
    /// never complete, so `finish` must not count them as unfinished.
    rejected: std::collections::HashSet<InvocationId>,
    attributions: Vec<InvocationAttribution>,
    skipped: u64,
}

impl AttributionEngine {
    /// A fresh engine.
    pub fn new() -> Self {
        AttributionEngine::default()
    }

    /// Folds a whole pre-collected stream.
    pub fn consume(&mut self, events: &[SimEvent]) {
        for event in events {
            self.record(event);
        }
    }

    /// Finishes the fold: sorts attributions by invocation id and counts
    /// arrivals that never completed.
    pub fn finish(mut self) -> AttributionReport {
        let completed: std::collections::HashSet<InvocationId> =
            self.attributions.iter().map(|a| a.id).collect();
        let unfinished = self
            .arrivals
            .keys()
            .filter(|id| !completed.contains(id) && !self.rejected.contains(id))
            .count() as u64;
        self.attributions.sort_by_key(|a| a.id);
        AttributionReport {
            invocations: self.attributions,
            skipped: self.skipped,
            unfinished,
        }
    }

    /// Builds the attribution for a detailed (single-worker) completion.
    /// `None` when the chain is incomplete (truncated log).
    fn complete_member(
        &mut self,
        completion: SimTime,
        invocation: InvocationId,
        batch: u64,
        member: u32,
    ) -> Option<InvocationAttribution> {
        let idx = member as usize;
        let (arrival, function) = *self.arrivals.get(&invocation)?;
        let b = self.batches.get_mut(&batch)?;
        if idx >= b.members.len() {
            return None;
        }
        let dispatched = b.dispatched_at;
        let decided = b.decision_done?;
        let ready = b.ready?;
        let exec = b.exec_start[idx]?;
        let body = b.body_start[idx].unwrap_or(exec);
        let body_fin = b.body_finish[idx].unwrap_or(body);
        let own_finish = b.own_finish[idx]?;
        let work = b.work[idx].unwrap_or(SimDuration::ZERO);

        // Consecutive timestamps on the chain: arrival ≤ routed ≤
        // dispatched ≤ decided ≤ ready ≤ exec ≤ body ≤ own_finish ≤
        // completion. Each phase is one gap, so the sum telescopes
        // exactly. `routed` defaults to `arrival` (clamped into the
        // chain), so gateway-queue is zero for non-gateway streams.
        let routed = self
            .route_at
            .get(&invocation)
            .copied()
            .unwrap_or(arrival)
            .max(arrival)
            .min(dispatched);
        let gateway_queue = routed.saturating_duration_since(arrival);
        let window_wait = dispatched.saturating_duration_since(routed);
        let dispatch = decided.saturating_duration_since(dispatched);
        // The decided → ready gap is the start overhead; which phase owns
        // it depends on the tier (full boot vs snapshot restore). Warm
        // starts have a zero gap, so both phases stay zero.
        let start_gap = ready.saturating_duration_since(decided);
        let (cold_start, restore) = if b.restored {
            (SimDuration::ZERO, start_gap)
        } else {
            (start_gap, SimDuration::ZERO)
        };
        let queue = exec.saturating_duration_since(ready);
        let mux_wait = body.saturating_duration_since(exec);
        // The body span stretches beyond the intrinsic work under
        // processor sharing; the stretch is CPU contention, the rest
        // (work + any post-body op latency) is execution.
        let stretch = body_fin
            .saturating_duration_since(body)
            .saturating_sub(work);
        let execution = own_finish
            .saturating_duration_since(body)
            .saturating_sub(stretch);
        let barrier = completion.saturating_duration_since(own_finish);

        let attribution = InvocationAttribution {
            id: invocation,
            function,
            container: Some(b.container),
            batch: Some(batch),
            cold: b.cold,
            restored: b.restored,
            retries: 0,
            arrival,
            completion,
            phases: PhaseBreakdown {
                retry_delay: SimDuration::ZERO,
                gateway_queue,
                window_wait,
                dispatch,
                cold_start,
                restore,
                queue,
                mux_wait,
                execution,
                cpu_contention: stretch,
                barrier,
            },
        };
        b.completed += 1;
        if b.completed == b.members.len() {
            self.batches.remove(&batch);
        }
        Some(attribution)
    }

    /// Builds the coarse attribution for a fleet-level completion.
    fn complete_fleet(
        &mut self,
        completion: SimTime,
        invocation: InvocationId,
    ) -> Option<InvocationAttribution> {
        let (arrival, function) = *self.arrivals.get(&invocation)?;
        let (redispatched, retries) = self
            .redispatch
            .get(&invocation)
            .copied()
            .unwrap_or((arrival, 0));
        // Chain: arrival ≤ last re-dispatch ≤ routed (last group formed,
        // clamped — a retried member can join a group whose first member
        // arrived earlier) ≤ completion.
        let redispatched = redispatched.max(arrival).min(completion);
        let routed = self
            .group_at
            .get(&invocation)
            .copied()
            .unwrap_or(redispatched)
            .max(redispatched)
            .min(completion);
        Some(InvocationAttribution {
            id: invocation,
            function,
            container: None,
            batch: None,
            cold: false,
            restored: false,
            retries,
            arrival,
            completion,
            phases: PhaseBreakdown {
                retry_delay: redispatched.saturating_duration_since(arrival),
                window_wait: routed.saturating_duration_since(redispatched),
                execution: completion.saturating_duration_since(routed),
                ..PhaseBreakdown::default()
            },
        })
    }
}

impl TraceSink for AttributionEngine {
    fn record(&mut self, event: &SimEvent) {
        let at = event.at;
        match &event.kind {
            EventKind::Arrival {
                invocation,
                function,
            } => {
                self.arrivals.insert(*invocation, (at, *function));
            }
            EventKind::GroupFormed { members, .. } => {
                for m in members {
                    let slot = self.group_at.entry(*m).or_insert(at);
                    *slot = (*slot).max(at);
                }
            }
            EventKind::GatewayRoute { members, .. } => {
                for m in members {
                    let slot = self.route_at.entry(*m).or_insert(at);
                    *slot = (*slot).max(at);
                }
            }
            EventKind::GatewayReject { invocation, .. } => {
                self.rejected.insert(*invocation);
            }
            EventKind::Redispatch {
                invocation,
                retries,
                ..
            } => {
                let slot = self.redispatch.entry(*invocation).or_insert((at, 0));
                slot.0 = slot.0.max(at);
                slot.1 = slot.1.max(*retries);
            }
            EventKind::DispatchDecision {
                batch,
                container,
                cold,
                restored,
                members,
                ..
            } => {
                let n = members.len();
                self.batches.insert(
                    *batch,
                    BatchChain {
                        container: *container,
                        cold: *cold,
                        restored: *restored,
                        members: members.clone(),
                        dispatched_at: at,
                        decision_done: None,
                        ready: None,
                        exec_start: vec![None; n],
                        body_start: vec![None; n],
                        body_finish: vec![None; n],
                        own_finish: vec![None; n],
                        work: vec![None; n],
                        completed: 0,
                    },
                );
            }
            EventKind::TaskFinish {
                task: TaskKind::Decision { batch },
            } => {
                if let Some(b) = self.batches.get_mut(batch) {
                    b.decision_done = Some(at);
                    if !b.cold && !b.restored {
                        b.ready = Some(at);
                    }
                }
            }
            EventKind::ColdStartEnd {
                batch: Some(batch), ..
            }
            | EventKind::RestoreDone {
                batch: Some(batch), ..
            } => {
                if let Some(b) = self.batches.get_mut(batch) {
                    b.ready = Some(at);
                }
            }
            EventKind::ExecBegin {
                batch,
                member,
                work,
            } => {
                if let Some(b) = self.batches.get_mut(batch) {
                    if let Some(slot) = b.exec_start.get_mut(*member as usize) {
                        *slot = Some(at);
                        b.work[*member as usize] = Some(*work);
                    }
                }
            }
            EventKind::TaskStart {
                task: TaskKind::Body { batch, member },
            } => {
                if let Some(b) = self.batches.get_mut(batch) {
                    if let Some(slot) = b.body_start.get_mut(*member as usize) {
                        *slot = Some(at);
                    }
                }
            }
            EventKind::TaskFinish {
                task: TaskKind::Body { batch, member },
            } => {
                if let Some(b) = self.batches.get_mut(batch) {
                    if let Some(slot) = b.body_finish.get_mut(*member as usize) {
                        *slot = Some(at);
                    }
                }
            }
            EventKind::ExecEnd { batch, member } => {
                if let Some(b) = self.batches.get_mut(batch) {
                    if let Some(slot) = b.own_finish.get_mut(*member as usize) {
                        *slot = Some(at);
                    }
                }
            }
            EventKind::InvocationComplete {
                invocation,
                batch: Some(batch),
                member: Some(member),
            } => match self.complete_member(at, *invocation, *batch, *member) {
                Some(a) => self.attributions.push(a),
                None => self.skipped += 1,
            },
            EventKind::InvocationComplete {
                invocation,
                batch: None,
                member: None,
            } => match self.complete_fleet(at, *invocation) {
                Some(a) => self.attributions.push(a),
                None => self.skipped += 1,
            },
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(us: u64, kind: EventKind) -> SimEvent {
        SimEvent::new(SimTime::from_micros(us), kind)
    }

    /// Warm single-member batch with a 100 µs decision, 50 µs queue, body
    /// stretched 250 µs past its 500 µs work, and a 100 µs barrier.
    fn detailed_stream() -> Vec<SimEvent> {
        vec![
            ev(
                0,
                EventKind::Arrival {
                    invocation: InvocationId::new(7),
                    function: FunctionId::new(2),
                },
            ),
            ev(
                40,
                EventKind::DispatchDecision {
                    batch: 0,
                    function: FunctionId::new(2),
                    container: ContainerId::new(1),
                    cold: false,
                    restored: false,
                    barrier: true,
                    members: vec![InvocationId::new(7)],
                },
            ),
            ev(
                40,
                EventKind::TaskStart {
                    task: TaskKind::Decision { batch: 0 },
                },
            ),
            ev(
                140,
                EventKind::TaskFinish {
                    task: TaskKind::Decision { batch: 0 },
                },
            ),
            ev(
                190,
                EventKind::ExecBegin {
                    batch: 0,
                    member: 0,
                    work: SimDuration::from_micros(500),
                },
            ),
            ev(
                210,
                EventKind::TaskStart {
                    task: TaskKind::Body {
                        batch: 0,
                        member: 0,
                    },
                },
            ),
            ev(
                960,
                EventKind::TaskFinish {
                    task: TaskKind::Body {
                        batch: 0,
                        member: 0,
                    },
                },
            ),
            ev(
                960,
                EventKind::ExecEnd {
                    batch: 0,
                    member: 0,
                },
            ),
            ev(
                1060,
                EventKind::InvocationComplete {
                    invocation: InvocationId::new(7),
                    batch: Some(0),
                    member: Some(0),
                },
            ),
        ]
    }

    #[test]
    fn detailed_phases_sum_exactly_and_split_contention() {
        let mut engine = AttributionEngine::new();
        engine.consume(&detailed_stream());
        let report = engine.finish();
        assert_eq!(report.invocations.len(), 1);
        assert_eq!(report.skipped, 0);
        let a = &report.invocations[0];
        assert!(a.is_exact());
        assert_eq!(a.phases.window_wait, SimDuration::from_micros(40));
        assert_eq!(a.phases.dispatch, SimDuration::from_micros(100));
        assert_eq!(a.phases.cold_start, SimDuration::ZERO);
        assert_eq!(a.phases.queue, SimDuration::from_micros(50));
        assert_eq!(a.phases.mux_wait, SimDuration::from_micros(20));
        // Body span 750 µs over 500 µs of work: 250 µs of contention.
        assert_eq!(a.phases.execution, SimDuration::from_micros(500));
        assert_eq!(a.phases.cpu_contention, SimDuration::from_micros(250));
        assert_eq!(a.phases.barrier, SimDuration::from_micros(100));
        assert_eq!(a.end_to_end(), SimDuration::from_micros(1060));
    }

    #[test]
    fn restored_start_lands_in_the_restore_phase() {
        let inv = InvocationId::new(9);
        let stream = vec![
            ev(
                0,
                EventKind::Arrival {
                    invocation: inv,
                    function: FunctionId::new(1),
                },
            ),
            ev(
                20,
                EventKind::DispatchDecision {
                    batch: 3,
                    function: FunctionId::new(1),
                    container: ContainerId::new(8),
                    cold: false,
                    restored: true,
                    barrier: false,
                    members: vec![inv],
                },
            ),
            ev(
                70,
                EventKind::TaskFinish {
                    task: TaskKind::Decision { batch: 3 },
                },
            ),
            ev(
                70,
                EventKind::RestoreBegin {
                    container: ContainerId::new(8),
                    batch: Some(3),
                },
            ),
            ev(
                109,
                EventKind::RestoreDone {
                    container: ContainerId::new(8),
                    batch: Some(3),
                },
            ),
            ev(
                109,
                EventKind::ExecBegin {
                    batch: 3,
                    member: 0,
                    work: SimDuration::from_micros(300),
                },
            ),
            ev(
                409,
                EventKind::ExecEnd {
                    batch: 3,
                    member: 0,
                },
            ),
            ev(
                409,
                EventKind::InvocationComplete {
                    invocation: inv,
                    batch: Some(3),
                    member: Some(0),
                },
            ),
        ];
        let mut engine = AttributionEngine::new();
        engine.consume(&stream);
        let report = engine.finish();
        assert!(report.all_exact());
        let a = &report.invocations[0];
        assert!(a.restored && !a.cold);
        assert_eq!(a.phases.restore, SimDuration::from_micros(39));
        assert_eq!(a.phases.cold_start, SimDuration::ZERO);
        assert_eq!(a.critical_path(), (Phase::Execution, "function"));
        let summary = &report.function_summaries()[0];
        assert_eq!(summary.restored, 1);
        assert_eq!(summary.cold, 0);
    }

    #[test]
    fn critical_path_names_the_bottleneck() {
        let mut engine = AttributionEngine::new();
        engine.consume(&detailed_stream());
        let report = engine.finish();
        let (phase, resource) = report.invocations[0].critical_path();
        assert_eq!(phase, Phase::Execution);
        assert_eq!(resource, "function");
        assert_eq!(report.critical_census()[0].0, Phase::Execution);
    }

    #[test]
    fn fleet_stream_attributes_retry_delay() {
        let inv = InvocationId::new(3);
        let stream = vec![
            ev(
                0,
                EventKind::Arrival {
                    invocation: inv,
                    function: FunctionId::new(0),
                },
            ),
            ev(
                100,
                EventKind::GroupFormed {
                    function: FunctionId::new(0),
                    size: 1,
                    worker: 0,
                    members: vec![inv],
                },
            ),
            ev(500, EventKind::WorkerCrash { worker: 0 }),
            ev(
                550,
                EventKind::Redispatch {
                    invocation: inv,
                    from_worker: 0,
                    retries: 1,
                },
            ),
            ev(
                550,
                EventKind::GroupFormed {
                    function: FunctionId::new(0),
                    size: 1,
                    worker: 1,
                    members: vec![inv],
                },
            ),
            ev(
                900,
                EventKind::InvocationComplete {
                    invocation: inv,
                    batch: None,
                    member: None,
                },
            ),
        ];
        let mut engine = AttributionEngine::new();
        engine.consume(&stream);
        let report = engine.finish();
        let a = &report.invocations[0];
        assert!(a.is_exact());
        assert_eq!(a.retries, 1);
        assert_eq!(a.phases.retry_delay, SimDuration::from_micros(550));
        assert_eq!(a.phases.window_wait, SimDuration::ZERO);
        assert_eq!(a.phases.execution, SimDuration::from_micros(350));
    }

    #[test]
    fn truncated_chain_is_skipped_not_fatal() {
        // Completion without a dispatch decision: count, don't panic.
        let stream = vec![
            ev(
                0,
                EventKind::Arrival {
                    invocation: InvocationId::new(1),
                    function: FunctionId::new(0),
                },
            ),
            ev(
                10,
                EventKind::InvocationComplete {
                    invocation: InvocationId::new(1),
                    batch: Some(0),
                    member: Some(0),
                },
            ),
            ev(
                20,
                EventKind::Arrival {
                    invocation: InvocationId::new(2),
                    function: FunctionId::new(0),
                },
            ),
        ];
        let mut engine = AttributionEngine::new();
        engine.consume(&stream);
        let report = engine.finish();
        assert!(report.invocations.is_empty());
        assert_eq!(report.skipped, 1);
        assert_eq!(report.unfinished, 2);
    }

    #[test]
    fn render_mentions_phases_and_census() {
        let mut engine = AttributionEngine::new();
        engine.consume(&detailed_stream());
        let text = engine.finish().render();
        assert!(text.contains("attributed 1 invocation(s)"));
        assert!(text.contains("execution"));
        assert!(text.contains("critical-path census"));
    }
}
