//! CDFs, percentiles, and summary statistics.

use faasbatch_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over durations.
///
/// # Examples
///
/// ```
/// use faasbatch_metrics::stats::Cdf;
/// use faasbatch_simcore::time::SimDuration;
///
/// let cdf = Cdf::from_samples(vec![
///     SimDuration::from_millis(10),
///     SimDuration::from_millis(20),
///     SimDuration::from_millis(30),
///     SimDuration::from_millis(40),
/// ]);
/// assert_eq!(cdf.quantile(0.5), SimDuration::from_millis(20));
/// assert_eq!(cdf.fraction_at_or_below(SimDuration::from_millis(25)), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<SimDuration>,
}

impl Cdf {
    /// Builds a CDF from raw samples (unsorted is fine).
    pub fn from_samples(mut samples: Vec<SimDuration>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[SimDuration] {
        &self.sorted
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using the nearest-rank method, so the
    /// returned value is always an observed sample.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!(!self.sorted.is_empty(), "quantile of empty cdf");
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at_or_below(&self, x: SimDuration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> SimDuration {
        if self.sorted.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.sorted.iter().map(|d| d.as_micros() as u128).sum();
        SimDuration::from_micros((total / self.sorted.len() as u128) as u64)
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn max(&self) -> SimDuration {
        *self.sorted.last().expect("max of empty cdf")
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn min(&self) -> SimDuration {
        *self.sorted.first().expect("min of empty cdf")
    }

    /// Evenly spaced CDF points `(value, cumulative fraction)` for plotting;
    /// at most `points` entries, always ending at the maximum.
    pub fn plot_points(&self, points: usize) -> Vec<(SimDuration, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n as f64 / points as f64).max(1.0);
        let mut out = Vec::new();
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            out.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            i += step;
        }
        let last = (self.sorted[n - 1], 1.0);
        if out.last() != Some(&last) {
            out.push(last);
        }
        out
    }
}

/// Five-number-style summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Mean.
    pub mean: SimDuration,
    /// Median (p50).
    pub p50: SimDuration,
    /// p95.
    pub p95: SimDuration,
    /// p98 (the paper's Kraken SLO anchor).
    pub p98: SimDuration,
    /// p99.
    pub p99: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl Summary {
    /// Summarises samples; `None` when empty.
    pub fn from_samples(samples: Vec<SimDuration>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let cdf = Cdf::from_samples(samples);
        Some(Summary {
            count: cdf.len(),
            mean: cdf.mean(),
            p50: cdf.quantile(0.50),
            p95: cdf.quantile(0.95),
            p98: cdf.quantile(0.98),
            p99: cdf.quantile(0.99),
            max: cdf.max(),
        })
    }
}

/// Mean of plain f64 values (0 when empty).
pub fn mean_f64(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum of plain f64 values (0 when empty, NaNs ignored).
pub fn max_f64(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn quantiles_nearest_rank() {
        let cdf = Cdf::from_samples((1..=100).map(ms).collect());
        assert_eq!(cdf.quantile(0.01), ms(1));
        assert_eq!(cdf.quantile(0.50), ms(50));
        assert_eq!(cdf.quantile(0.98), ms(98));
        assert_eq!(cdf.quantile(1.0), ms(100));
        assert_eq!(cdf.quantile(0.0), ms(1));
    }

    #[test]
    fn fraction_at_or_below_works() {
        let cdf = Cdf::from_samples(vec![ms(10), ms(20), ms(30), ms(40)]);
        assert_eq!(cdf.fraction_at_or_below(ms(5)), 0.0);
        assert_eq!(cdf.fraction_at_or_below(ms(10)), 0.25);
        assert_eq!(cdf.fraction_at_or_below(ms(40)), 1.0);
        assert_eq!(cdf.fraction_at_or_below(ms(400)), 1.0);
    }

    #[test]
    fn mean_min_max() {
        let cdf = Cdf::from_samples(vec![ms(30), ms(10), ms(20)]);
        assert_eq!(cdf.mean(), ms(20));
        assert_eq!(cdf.min(), ms(10));
        assert_eq!(cdf.max(), ms(30));
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = Cdf::from_samples(Vec::new());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(ms(1)), 0.0);
        assert_eq!(cdf.mean(), SimDuration::ZERO);
        assert!(cdf.plot_points(10).is_empty());
    }

    #[test]
    #[should_panic(expected = "quantile of empty")]
    fn quantile_of_empty_panics() {
        Cdf::from_samples(Vec::new()).quantile(0.5);
    }

    #[test]
    fn plot_points_cover_range() {
        let cdf = Cdf::from_samples((1..=1000).map(ms).collect());
        let pts = cdf.plot_points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts.last().unwrap().1, 1.0);
        assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn plot_points_smaller_than_requested() {
        let cdf = Cdf::from_samples(vec![ms(1), ms(2)]);
        let pts = cdf.plot_points(10);
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::from_samples((1..=100).map(ms).collect()).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p98, ms(98));
        assert_eq!(s.max, ms(100));
        assert!(Summary::from_samples(Vec::new()).is_none());
    }

    #[test]
    fn f64_helpers() {
        assert_eq!(mean_f64(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean_f64(&[]), 0.0);
        assert_eq!(max_f64(&[1.0, 5.0, 2.0]), 5.0);
        assert_eq!(max_f64(&[]), 0.0);
    }
}
