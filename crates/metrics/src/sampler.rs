//! Once-per-second host resource sampling (paper §V-B: "we obtain the
//! resource utilization in the host at a frequency of once per second").

use faasbatch_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One host resource sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceSample {
    /// Sample instant.
    pub at: SimTime,
    /// Total allocated memory at the instant.
    pub memory_bytes: u64,
    /// Busy cores at the instant.
    pub busy_cores: f64,
    /// Live (non-terminated) containers.
    pub live_containers: u64,
}

/// Collects [`ResourceSample`]s and summarises them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceSampler {
    samples: Vec<ResourceSample>,
}

impl ResourceSampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard sampling period (1 s, as in the paper).
    pub const PERIOD: SimDuration = SimDuration::from_secs(1);

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if samples go backwards in time.
    pub fn record(&mut self, sample: ResourceSample) {
        if let Some(last) = self.samples.last() {
            assert!(sample.at >= last.at, "samples must be time-ordered");
        }
        self.samples.push(sample);
    }

    /// All samples, time-ordered.
    pub fn samples(&self) -> &[ResourceSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean allocated memory across samples (bytes).
    pub fn mean_memory_bytes(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.memory_bytes as f64)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Peak allocated memory across samples (bytes).
    pub fn peak_memory_bytes(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.memory_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Mean busy-core count.
    pub fn mean_busy_cores(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.busy_cores).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean CPU utilization given the host core count.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not positive.
    pub fn mean_utilization(&self, cores: f64) -> f64 {
        assert!(cores > 0.0, "invalid core count");
        self.mean_busy_cores() / cores
    }

    /// Peak live containers across samples.
    pub fn peak_containers(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.live_containers)
            .max()
            .unwrap_or(0)
    }

    /// Mean live containers across samples.
    pub fn mean_containers(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.live_containers as f64)
            .sum::<f64>()
            / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(sec: u64, mem: u64, cores: f64, ctrs: u64) -> ResourceSample {
        ResourceSample {
            at: SimTime::from_secs(sec),
            memory_bytes: mem,
            busy_cores: cores,
            live_containers: ctrs,
        }
    }

    #[test]
    fn summaries() {
        let mut s = ResourceSampler::new();
        s.record(sample(0, 100, 2.0, 1));
        s.record(sample(1, 300, 4.0, 3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean_memory_bytes(), 200.0);
        assert_eq!(s.peak_memory_bytes(), 300);
        assert_eq!(s.mean_busy_cores(), 3.0);
        assert_eq!(s.mean_utilization(8.0), 0.375);
        assert_eq!(s.peak_containers(), 3);
        assert_eq!(s.mean_containers(), 2.0);
    }

    #[test]
    fn empty_sampler_is_zeroes() {
        let s = ResourceSampler::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_memory_bytes(), 0.0);
        assert_eq!(s.peak_memory_bytes(), 0);
        assert_eq!(s.peak_containers(), 0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn backwards_sample_panics() {
        let mut s = ResourceSampler::new();
        s.record(sample(5, 0, 0.0, 0));
        s.record(sample(1, 0, 0.0, 0));
    }
}
