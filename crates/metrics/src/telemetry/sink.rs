//! A [`TraceSink`] that folds the typed event stream into a
//! [`MetricRegistry`].
//!
//! Live layers record into registry handles directly; simulated runs
//! (and replayed JSONL streams) get the same metric families by routing
//! their stream through this sink. Because registration order and every
//! folded value are functions of the event stream alone, two identical
//! runs produce byte-identical [`render_json`](MetricRegistry::render_json)
//! snapshots — the determinism property pinned in tests.

use super::registry::{Counter, Gauge, MetricRegistry};
use super::Histogram;
use crate::events::{EventKind, SimEvent, TraceSink};
use faasbatch_container::ids::{FunctionId, InvocationId};
use faasbatch_simcore::time::SimTime;
use std::any::Any;
use std::collections::HashMap;

/// Folds events into registry counters, gauges, and per-function
/// end-to-end latency histograms.
///
/// # Examples
///
/// ```
/// use faasbatch_container::ids::{FunctionId, InvocationId};
/// use faasbatch_metrics::events::{EventKind, SimEvent, TraceSink};
/// use faasbatch_metrics::telemetry::{MetricRegistry, TelemetrySink};
/// use faasbatch_simcore::time::SimTime;
///
/// let registry = MetricRegistry::new();
/// let mut sink = TelemetrySink::new(registry.clone());
/// sink.record(&SimEvent::new(
///     SimTime::from_micros(0),
///     EventKind::Arrival { invocation: InvocationId::new(0), function: FunctionId::new(0) },
/// ));
/// assert!(registry.render_prometheus().contains("faasbatch_arrivals_total 1"));
/// ```
pub struct TelemetrySink {
    registry: MetricRegistry,
    arrivals: Counter,
    completions: Counter,
    cold_starts: Counter,
    warm_hits: Counter,
    batches: Counter,
    rejects: Counter,
    in_flight: Gauge,
    batch_size: Histogram,
    e2e: HashMap<FunctionId, Histogram>,
    arrived: HashMap<InvocationId, (SimTime, FunctionId)>,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink")
            .field("arrivals", &self.arrivals.value())
            .field("completions", &self.completions.value())
            .finish()
    }
}

impl TelemetrySink {
    /// Registers the stream-derived metric families on `registry` and
    /// returns the folding sink.
    pub fn new(registry: MetricRegistry) -> Self {
        let arrivals = registry.counter("faasbatch_arrivals_total", "Invocations that arrived.");
        let completions = registry.counter(
            "faasbatch_completions_total",
            "Invocations that completed end to end.",
        );
        let cold_starts = registry.counter(
            "faasbatch_cold_starts_total",
            "Batches dispatched onto a cold container.",
        );
        let warm_hits = registry.counter(
            "faasbatch_warm_hits_total",
            "Batches dispatched onto a warm container.",
        );
        let batches = registry.counter("faasbatch_batches_total", "Dispatch decisions made.");
        let rejects = registry.counter(
            "faasbatch_gateway_rejects_total",
            "Invocations refused by gateway back-pressure.",
        );
        let in_flight = registry.gauge(
            "faasbatch_in_flight",
            "Invocations arrived but not yet completed or rejected.",
        );
        let batch_size = registry.histogram(
            "faasbatch_batch_size",
            "Members per dispatch decision (count, not microseconds).",
        );
        TelemetrySink {
            registry,
            arrivals,
            completions,
            cold_starts,
            warm_hits,
            batches,
            rejects,
            in_flight,
            batch_size,
            e2e: HashMap::new(),
            arrived: HashMap::new(),
        }
    }

    /// The registry this sink folds into.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    fn e2e_for(&mut self, function: FunctionId) -> &Histogram {
        let registry = &self.registry;
        self.e2e.entry(function).or_insert_with(|| {
            let mut label = String::new();
            use std::fmt::Write as _;
            let _ = write!(label, "{}", function.index());
            registry.histogram_with(
                "faasbatch_e2e_latency_us",
                "End-to-end invocation latency, microseconds.",
                &[("function", &label)],
            )
        })
    }
}

impl TraceSink for TelemetrySink {
    fn record(&mut self, event: &SimEvent) {
        match &event.kind {
            EventKind::Arrival {
                invocation,
                function,
            } => {
                self.arrivals.inc();
                self.in_flight.add(1);
                self.arrived.insert(*invocation, (event.at, *function));
            }
            EventKind::DispatchDecision { cold, members, .. } => {
                self.batches.inc();
                self.batch_size.record(members.len() as u64);
                if *cold {
                    self.cold_starts.inc();
                } else {
                    self.warm_hits.inc();
                }
            }
            EventKind::GatewayReject { invocation, .. } => {
                self.rejects.inc();
                if self.arrived.remove(invocation).is_some() {
                    self.in_flight.sub(1);
                }
            }
            EventKind::InvocationComplete { invocation, .. } => {
                self.completions.inc();
                if let Some((at, function)) = self.arrived.remove(invocation) {
                    self.in_flight.sub(1);
                    let e2e = event.at.saturating_duration_since(at).as_micros();
                    self.e2e_for(function).record(e2e);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: EventKind) -> SimEvent {
        SimEvent::new(SimTime::from_micros(at), kind)
    }

    #[test]
    fn folds_arrivals_completions_and_latency() {
        let registry = MetricRegistry::new();
        let mut sink = TelemetrySink::new(registry.clone());
        let inv = InvocationId::new(0);
        let f = FunctionId::new(2);
        sink.record(&ev(
            100,
            EventKind::Arrival {
                invocation: inv,
                function: f,
            },
        ));
        sink.record(&ev(
            900,
            EventKind::InvocationComplete {
                invocation: inv,
                batch: Some(0),
                member: Some(0),
            },
        ));
        let text = registry.render_prometheus();
        assert!(text.contains("faasbatch_arrivals_total 1"));
        assert!(text.contains("faasbatch_completions_total 1"));
        assert!(text.contains("faasbatch_in_flight 0"));
        assert!(text.contains("faasbatch_e2e_latency_us_count{function=\"2\"} 1"));
    }

    #[test]
    fn rejects_release_in_flight() {
        let registry = MetricRegistry::new();
        let mut sink = TelemetrySink::new(registry.clone());
        let inv = InvocationId::new(7);
        sink.record(&ev(
            0,
            EventKind::Arrival {
                invocation: inv,
                function: FunctionId::new(0),
            },
        ));
        sink.record(&ev(
            5,
            EventKind::GatewayReject {
                invocation: inv,
                shard: 0,
                depth: 8,
            },
        ));
        let text = registry.render_prometheus();
        assert!(text.contains("faasbatch_gateway_rejects_total 1"));
        assert!(text.contains("faasbatch_in_flight 0"));
    }
}
