//! Log-bucketed HDR-style latency histogram over fixed-size atomic arrays.
//!
//! Values (microseconds, by convention) land in one of [`BUCKETS`] buckets:
//! an exact linear range `0..16`, then 16 equal-width sub-buckets per
//! power-of-two octave, bounding relative error at `1/16` (6.25%) — the
//! "bucket resolution" every quantile is exact within. Each recording
//! thread owns a shard of `AtomicU64` bucket counts (selected once per
//! thread), so the hot path is one index computation plus two relaxed
//! `fetch_add`s and shards merge losslessly at snapshot time.

use super::registry::thread_slot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket precision bits: each octave splits into `2^SUB_BITS` equal
/// sub-buckets, so any recorded value is at most `1/2^SUB_BITS` (6.25%)
/// below its bucket's upper bound.
pub const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Octaves past the exact linear range. Values at or above `16 << 32`
/// (~19 hours in microseconds) clamp into the top bucket.
const OCTAVES: u32 = 32;
/// Total bucket count: 16 exact buckets plus 16 per octave.
pub const BUCKETS: usize = (SUB as usize) * (1 + OCTAVES as usize);

/// Shards per histogram. Fewer than the counter shards because each shard
/// carries a full bucket array; contention is already near zero when
/// worker threads outnumber shards only slightly.
const HIST_SHARDS: usize = 8;

/// The bucket index `value` lands in.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = msb - SUB_BITS;
    if octave >= OCTAVES {
        return BUCKETS - 1;
    }
    let sub = ((value >> octave) & (SUB - 1)) as usize;
    SUB as usize + octave as usize * SUB as usize + sub
}

/// Inclusive upper bound of bucket `index` — the Prometheus `le` value.
#[inline]
pub fn bucket_max(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let rel = index - SUB as usize;
    let octave = (rel / SUB as usize) as u32;
    let sub = (rel % SUB as usize) as u64;
    ((SUB + sub + 1) << octave) - 1
}

struct HistShard {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

/// A mergeable multi-threaded latency histogram handle.
///
/// Cloning is cheap (an `Arc` bump); clones feed the same buckets.
/// Recording never locks, never allocates, and never contends across
/// threads mapped to different shards.
///
/// # Examples
///
/// ```
/// use faasbatch_metrics::telemetry::Histogram;
///
/// let h = Histogram::new();
/// h.record(250);
/// h.record(90_000);
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 2);
/// assert!(snap.quantile(0.5) >= 250);
/// ```
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<[HistShard]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            shards: (0..HIST_SHARDS).map(|_| HistShard::new()).collect(),
        }
    }

    /// Records one value (conventionally microseconds). Lock-free.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[thread_slot() % HIST_SHARDS];
        shard.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Merges every shard into one immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in self.shards.iter() {
            for (merged, cell) in counts.iter_mut().zip(shard.buckets.iter()) {
                *merged += cell.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        let count = counts.iter().sum();
        HistogramSnapshot { counts, count, sum }
    }
}

/// A merged, point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, indexed like [`bucket_of`] / [`bucket_max`].
    pub counts: Vec<u64>,
    /// Total recordings.
    pub count: u64,
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile, reported as the containing bucket's upper
    /// bound — exact within bucket resolution. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_max(i);
            }
        }
        bucket_max(BUCKETS - 1)
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative `(le, count)` pairs at every non-empty bucket, in
    /// ascending `le` order — the sparse exposition form.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_max(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_max(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        let mut prev_max = None;
        for i in 0..BUCKETS {
            let max = bucket_max(i);
            if let Some(p) = prev_max {
                assert!(max > p, "bucket {i} max {max} <= previous {p}");
                // The first value of this bucket is one past the previous max.
                assert_eq!(bucket_of(p + 1), i);
            }
            assert_eq!(bucket_of(max), i, "max of bucket {i} maps back");
            prev_max = Some(max);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 100, 999, 12_345, 1 << 20, (1 << 30) + 7] {
            let max = bucket_max(bucket_of(v));
            assert!(max >= v);
            assert!((max - v) as f64 / v as f64 <= 1.0 / SUB as f64 + 1e-9);
        }
    }

    #[test]
    fn huge_values_clamp_to_top_bucket() {
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(bucket_max(BUCKETS - 1)), BUCKETS - 1);
    }

    #[test]
    fn quantiles_match_oracle_within_a_bucket() {
        let h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * 37 % 50_000).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        for q in [0.5, 0.95, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let got = snap.quantile(q);
            let diff = bucket_of(got).abs_diff(bucket_of(oracle));
            assert!(diff <= 1, "q{q}: got {got} oracle {oracle}");
        }
    }

    #[test]
    fn cumulative_is_sparse_and_sums() {
        let h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(1_000_000);
        let cum = h.snapshot().cumulative();
        assert_eq!(cum.len(), 2);
        assert_eq!(cum[0], (3, 2));
        assert_eq!(cum[1].1, 3);
    }
}
