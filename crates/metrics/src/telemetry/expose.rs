//! Exposition: deterministic Prometheus-text and JSON rendering, a
//! hand-rolled HTTP endpoint, and the matching one-shot GET client.
//!
//! Rendering walks registry entries in registration order and formats
//! every value with integer arithmetic, so two registries fed identical
//! inputs render byte-identical output — the property the determinism
//! tests pin. The server is a single `std::net` accept-loop thread (no
//! async runtime, no dependencies): enough for a scrape target, which is
//! one short-lived GET every few seconds.

use super::registry::{Instrument, MetricRegistry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn fmt_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

/// Labels with one extra `le` pair appended, for histogram bucket lines.
fn fmt_bucket_labels(out: &mut String, labels: &[(String, String)], le: &str) {
    out.push('{');
    for (k, v) in labels {
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push_str("\",");
    }
    out.push_str("le=\"");
    out.push_str(le);
    out.push_str("\"}");
}

impl MetricRegistry {
    /// Renders every registered metric in the Prometheus text format
    /// (version 0.0.4). `# HELP`/`# TYPE` headers are emitted at a
    /// family's first appearance in registration order; histogram
    /// buckets are sparse (non-empty `le`s only, plus `+Inf`).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut seen: Vec<String> = Vec::new();
        for entry in self.entries().iter() {
            let (type_name, base) = match &entry.instrument {
                Instrument::Counter(_) | Instrument::CounterFn(_) => ("counter", &entry.name),
                Instrument::Gauge(_) | Instrument::GaugeFn(_) => ("gauge", &entry.name),
                Instrument::Histogram(_) => ("histogram", &entry.name),
            };
            if !seen.iter().any(|s| s == base) {
                let _ = writeln!(out, "# HELP {} {}", base, entry.help);
                let _ = writeln!(out, "# TYPE {base} {type_name}");
                seen.push(base.clone());
            }
            match &entry.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&entry.name);
                    fmt_labels(&mut out, &entry.labels);
                    let _ = writeln!(out, " {}", c.value());
                }
                Instrument::CounterFn(f) => {
                    out.push_str(&entry.name);
                    fmt_labels(&mut out, &entry.labels);
                    let _ = writeln!(out, " {}", f());
                }
                Instrument::Gauge(g) => {
                    out.push_str(&entry.name);
                    fmt_labels(&mut out, &entry.labels);
                    let _ = writeln!(out, " {}", g.value());
                }
                Instrument::GaugeFn(f) => {
                    out.push_str(&entry.name);
                    fmt_labels(&mut out, &entry.labels);
                    let _ = writeln!(out, " {}", f());
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut le_buf = String::new();
                    for (le, cum) in snap.cumulative() {
                        out.push_str(&entry.name);
                        out.push_str("_bucket");
                        le_buf.clear();
                        let _ = write!(le_buf, "{le}");
                        fmt_bucket_labels(&mut out, &entry.labels, &le_buf);
                        let _ = writeln!(out, " {cum}");
                    }
                    out.push_str(&entry.name);
                    out.push_str("_bucket");
                    fmt_bucket_labels(&mut out, &entry.labels, "+Inf");
                    let _ = writeln!(out, " {}", snap.count);
                    out.push_str(&entry.name);
                    out.push_str("_sum");
                    fmt_labels(&mut out, &entry.labels);
                    let _ = writeln!(out, " {}", snap.sum);
                    out.push_str(&entry.name);
                    out.push_str("_count");
                    fmt_labels(&mut out, &entry.labels);
                    let _ = writeln!(out, " {}", snap.count);
                }
            }
        }
        out
    }

    /// Renders a machine-readable snapshot: one JSON object with a
    /// `metrics` array in registration order. Hand-formatted (not via
    /// `serde_json`) so key order and number formatting are fixed and
    /// the output is byte-deterministic for deterministic inputs.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"metrics\":[");
        for (i, entry) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",", entry.name);
            out.push_str("\"labels\":{");
            for (j, (k, v)) in entry.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":\"{v}\"");
            }
            out.push_str("},");
            match &entry.instrument {
                Instrument::Counter(c) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{}", c.value());
                }
                Instrument::CounterFn(f) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{}", f());
                }
                Instrument::Gauge(g) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{}", g.value());
                }
                Instrument::GaugeFn(f) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{}", f());
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        snap.count, snap.sum
                    );
                    for (j, (le, cum)) in snap.cumulative().into_iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{le},{cum}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

/// The live scrape endpoint: `GET /metrics` (Prometheus text) and
/// `GET /json` (snapshot), served from one background thread.
///
/// Dropping the server (or calling [`shutdown`](TelemetryServer::shutdown))
/// stops the thread and releases the port.
///
/// # Examples
///
/// ```
/// use faasbatch_metrics::telemetry::{http_get, MetricRegistry, TelemetryServer};
///
/// let registry = MetricRegistry::new();
/// registry.counter("faasbatch_demo_total", "demo").inc();
/// let server = TelemetryServer::bind("127.0.0.1:0", registry).unwrap();
/// let body = http_get(server.local_addr(), "/metrics").unwrap();
/// assert!(body.contains("faasbatch_demo_total 1"));
/// server.shutdown();
/// ```
pub struct TelemetryServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.local)
            .finish()
    }
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`, or port 0 for an ephemeral
    /// port) and starts serving `registry` in a background thread.
    pub fn bind(addr: &str, registry: MetricRegistry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("faasbatch-telemetry".to_owned())
            .spawn(move || serve_loop(&listener, &registry, &stop_flag))?;
        Ok(TelemetryServer {
            local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        let _ = handle.join();
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(listener: &TcpListener, registry: &MetricRegistry, stop: &AtomicBool) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Serve inline: scrapes are rare and tiny, a thread pool would
        // be ceremony. A slow client can stall the next scrape by at
        // most the read timeout.
        let _ = serve_one(stream, registry);
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn serve_one(mut stream: TcpStream, registry: &MetricRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let mut len = 0;
    // Read until the header terminator; requests we serve are one line
    // plus a few headers, far under the buffer.
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" | "/" => (
            "200 OK",
            "text/plain; version=0.0.4",
            registry.render_prometheus(),
        ),
        "/json" => ("200 OK", "application/json", registry.render_json()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One-shot HTTP GET against a telemetry endpoint; returns the body.
/// The client half of [`TelemetryServer`] — used by `faasbatch top`, the
/// scrape-under-load bench, and tests, so none of them need `curl`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or(response);
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricRegistry {
        let registry = MetricRegistry::new();
        let c = registry.counter_with("faasbatch_reqs_total", "Requests.", &[("shard", "0")]);
        c.add(5);
        let g = registry.gauge("faasbatch_in_flight", "In flight.");
        g.add(3);
        registry.gauge_fn("faasbatch_depth", "Depth.", || 9);
        let h = registry.histogram("faasbatch_lat_us", "Latency.");
        h.record(10);
        h.record(700);
        registry
    }

    #[test]
    fn prometheus_rendering_has_headers_and_values() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# HELP faasbatch_reqs_total Requests."));
        assert!(text.contains("# TYPE faasbatch_reqs_total counter"));
        assert!(text.contains("faasbatch_reqs_total{shard=\"0\"} 5"));
        assert!(text.contains("faasbatch_in_flight 3"));
        assert!(text.contains("faasbatch_depth 9"));
        assert!(text.contains("faasbatch_lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("faasbatch_lat_us_count 2"));
    }

    #[test]
    fn json_rendering_is_deterministic() {
        let a = sample_registry().render_json();
        let b = sample_registry().render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"name\":\"faasbatch_lat_us\""));
        assert!(a.contains("\"type\":\"histogram\""));
    }

    #[test]
    fn server_serves_both_endpoints_and_404s() {
        let server = TelemetryServer::bind("127.0.0.1:0", sample_registry()).unwrap();
        let addr = server.local_addr();
        let metrics = http_get(addr, "/metrics").unwrap();
        assert!(metrics.contains("faasbatch_reqs_total"));
        let json = http_get(addr, "/json").unwrap();
        assert!(json.starts_with("{\"metrics\":["));
        let missing = http_get(addr, "/nope").unwrap();
        assert!(missing.contains("not found"));
        server.shutdown();
    }
}
