//! The lock-free live metric registry.
//!
//! Instruments are registered once at build time (under a mutex nobody
//! holds afterwards); the returned handles embed `Arc`s straight to the
//! sharded atomic cells, so hot-path recording is an index plus a relaxed
//! `fetch_add` — no name lookup, no lock, no allocation. Snapshots merge
//! the shards and iterate entries in registration order, which is what
//! makes rendered exposition byte-deterministic for deterministic inputs.

use super::histogram::Histogram;
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Shards per counter/gauge. Each shard is one cache-line-padded atomic;
/// threads are assigned shards round-robin on first use.
const SHARDS: usize = 16;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's stable shard-selection slot, assigned round-robin on
/// first use. Shared by every sharded instrument so one thread always
/// touches the same cells.
#[inline]
pub(crate) fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            s.set(v);
            v
        }
    })
}

/// One cache line per atomic, so shards never false-share.
#[repr(align(64))]
struct PadU64(AtomicU64);

#[repr(align(64))]
struct PadI64(AtomicI64);

/// A monotonically increasing event count.
///
/// Cloning is cheap; clones feed the same cells. `inc`/`add` are
/// lock-free and allocation-free.
#[derive(Clone)]
pub struct Counter {
    cells: Arc<[PadU64]>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

impl Counter {
    /// A fresh, unregistered counter (usually obtained via
    /// [`MetricRegistry::counter`] instead).
    pub fn new() -> Self {
        Counter {
            cells: (0..SHARDS).map(|_| PadU64(AtomicU64::new(0))).collect(),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_slot() % SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Merged total across shards.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A signed up/down level (e.g. jobs currently in flight).
///
/// Sharded like [`Counter`]; `add` and `sub` from different threads may
/// land on different shards, but the merged sum is always exact.
#[derive(Clone)]
pub struct Gauge {
    cells: Arc<[PadI64]>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Self {
        Gauge {
            cells: (0..SHARDS).map(|_| PadI64(AtomicI64::new(0))).collect(),
        }
    }

    /// Raises the level by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.cells[thread_slot() % SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Merged level across shards.
    pub fn value(&self) -> i64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// What an [`Entry`] measures and how it renders.
pub(crate) enum Instrument {
    /// Sharded monotonic count.
    Counter(Counter),
    /// Sharded signed level.
    Gauge(Gauge),
    /// Counter whose value is polled from a closure at snapshot time —
    /// how layers that cannot depend on this crate (e.g. `faasbatch-exec`)
    /// expose their internal counters.
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Gauge polled from a closure at snapshot time.
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
    /// Sharded HDR-style histogram.
    Histogram(Histogram),
}

/// One registered metric: family name, help text, label set, instrument.
pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) instrument: Instrument,
}

/// The build-time registry every live layer hangs its instruments on.
///
/// Cloning is cheap (an `Arc` bump); clones see the same entries.
/// Registration locks briefly; recording through the returned handles
/// never does.
///
/// # Examples
///
/// ```
/// use faasbatch_metrics::telemetry::MetricRegistry;
///
/// let registry = MetricRegistry::new();
/// let hits = registry.counter("faasbatch_warm_hits_total", "Warm container hits.");
/// hits.inc();
/// assert_eq!(hits.value(), 1);
/// assert!(registry.render_prometheus().contains("faasbatch_warm_hits_total 1"));
/// ```
#[derive(Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<Mutex<Vec<Entry>>>,
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricRegistry")
            .field("entries", &self.entries().len())
            .finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn entries(&self) -> MutexGuard<'_, Vec<Entry>> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], instrument: Instrument) {
        self.entries().push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: owned_labels(labels),
            instrument,
        });
    }

    /// Registers an unlabelled counter and returns its recording handle.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers a labelled counter child (same family name may repeat
    /// with different label sets).
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let c = Counter::new();
        self.push(name, help, labels, Instrument::Counter(c.clone()));
        c
    }

    /// Registers an unlabelled gauge and returns its recording handle.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers a labelled gauge child.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let g = Gauge::new();
        self.push(name, help, labels, Instrument::Gauge(g.clone()));
        g
    }

    /// Registers a counter whose value is polled from `f` at snapshot
    /// time. For layers that own their own atomics (the executor's
    /// per-worker counts) rather than recording through a handle.
    pub fn counter_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.counter_fn_with(name, help, &[], f);
    }

    /// Labelled [`counter_fn`](Self::counter_fn).
    pub fn counter_fn_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(name, help, labels, Instrument::CounterFn(Box::new(f)));
    }

    /// Registers a gauge polled from `f` at snapshot time (queue depths,
    /// occupancy — anything already tracked elsewhere).
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        self.gauge_fn_with(name, help, &[], f);
    }

    /// Labelled [`gauge_fn`](Self::gauge_fn).
    pub fn gauge_fn_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        self.push(name, help, labels, Instrument::GaugeFn(Box::new(f)));
    }

    /// Registers an unlabelled histogram and returns its recording handle.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers a labelled histogram child.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let h = Histogram::new();
        self.push(name, help, labels, Instrument::Histogram(h.clone()));
        h
    }

    /// Number of registered metric children.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_across_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauges_balance_across_threads() {
        let g = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let g = g.clone();
                scope.spawn(move || {
                    for _ in 0..5_000 {
                        g.add(3);
                        g.sub(2);
                    }
                });
            }
        });
        assert_eq!(g.value(), 4 * 5_000);
    }

    #[test]
    fn registration_hands_back_live_handles() {
        let registry = MetricRegistry::new();
        let c = registry.counter("faasbatch_test_total", "help");
        let g = registry.gauge_with("faasbatch_depth", "help", &[("shard", "0")]);
        registry.gauge_fn("faasbatch_polled", "help", || 42);
        let h = registry.histogram("faasbatch_lat_us", "help");
        c.add(7);
        g.add(-3);
        h.record(100);
        assert_eq!(registry.len(), 4);
        assert_eq!(c.value(), 7);
        assert_eq!(g.value(), -3);
        assert_eq!(h.snapshot().count, 1);
    }
}
