//! The live telemetry plane (DESIGN.md §18).
//!
//! The trace spine (§11–§13) explains a run *after* it ends; this module
//! watches the live stack *while* it runs, without slowing it down:
//!
//! * [`MetricRegistry`] — build-time registration of [`Counter`]s,
//!   [`Gauge`]s, polled closures, and [`Histogram`]s whose hot path is an
//!   index plus a relaxed `fetch_add` on per-thread-sharded,
//!   cache-line-padded atomics;
//! * [`Histogram`] — log-bucketed HDR-style latency histograms over fixed
//!   `AtomicU64` arrays, mergeable across threads, quantiles exact within
//!   6.25% bucket resolution;
//! * [`TelemetryServer`] / [`http_get`] — a dependency-free HTTP endpoint
//!   serving Prometheus text (`/metrics`) and a byte-deterministic JSON
//!   snapshot (`/json`), plus the matching one-shot client behind
//!   `faasbatch top`;
//! * [`FlightRecorder`] — a bounded sharded ring of recent
//!   [`SimEvent`](crate::events::SimEvent)s that dumps a causally-ordered
//!   JSONL post-mortem (readable by `faasbatch trace --analyze`) on
//!   panic, auditor violation, or shutdown;
//! * [`TelemetrySink`] — a [`TraceSink`](crate::events::TraceSink) that
//!   folds any event stream into a registry, giving simulated runs the
//!   same metric families the live layers record directly.

mod expose;
mod flight;
mod histogram;
mod registry;
mod sink;

pub use expose::{http_get, TelemetryServer};
pub use flight::FlightRecorder;
pub use histogram::{bucket_max, bucket_of, Histogram, HistogramSnapshot, BUCKETS, SUB_BITS};
pub use registry::{Counter, Gauge, MetricRegistry};
pub use sink::TelemetrySink;
