//! The flight recorder: a bounded ring of recent [`SimEvent`]s that
//! survives until something goes wrong.
//!
//! Live layers mirror every event they record into per-thread-sharded
//! drop-oldest rings (each shard its own tiny mutex, touched by one
//! thread in steady state, so pushes never contend). On panic, auditor
//! violation, or shutdown, [`dump`](FlightRecorder::dump) merges the
//! shards into one causally-ordered stream and writes the same JSONL the
//! trace spine already speaks — so `faasbatch trace --analyze` and the
//! [`AttributionEngine`](crate::analysis::AttributionEngine) work on
//! post-mortems unchanged.
//!
//! Causal order across shards: every record takes a ticket from one
//! shared atomic sequence. If event B was caused by event A, A's
//! `fetch_add` is ordered before B's in the counter's modification
//! order, so sorting by `(at, seq)` reconstructs the happens-before
//! order the auditor and attribution rely on — the same guarantee
//! [`LiveTraceRecorder`](crate::live::LiveTraceRecorder) gets from its
//! single insertion-ordered buffer.

use crate::events::SimEvent;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use super::registry::thread_slot;

/// Ring shards. One per hardware-ish thread bucket; pushes from threads
/// in different buckets never share a lock.
const SHARDS: usize = 16;

struct Slot {
    seq: u64,
    event: SimEvent,
}

struct FlightInner {
    shards: Box<[Mutex<VecDeque<Slot>>]>,
    per_shard: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

/// Bounded, sharded recorder of the most recent events.
///
/// Cloning is cheap (an `Arc` bump); clones feed the same rings.
///
/// # Examples
///
/// ```
/// use faasbatch_container::ids::{FunctionId, InvocationId};
/// use faasbatch_metrics::events::{EventKind, SimEvent};
/// use faasbatch_metrics::telemetry::FlightRecorder;
/// use faasbatch_simcore::time::SimTime;
///
/// let flight = FlightRecorder::new(1024);
/// flight.record(SimEvent::new(
///     SimTime::from_micros(5),
///     EventKind::Arrival { invocation: InvocationId::new(0), function: FunctionId::new(0) },
/// ));
/// assert_eq!(flight.dump().len(), 1);
/// ```
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("buffered", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding roughly `capacity` recent events in total
    /// (split evenly across internal shards; minimum one per shard).
    pub fn new(capacity: usize) -> Self {
        let per_shard = (capacity / SHARDS).max(1);
        FlightRecorder {
            inner: Arc::new(FlightInner {
                shards: (0..SHARDS)
                    .map(|_| Mutex::new(VecDeque::with_capacity(per_shard)))
                    .collect(),
                per_shard,
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Records one event, evicting the shard's oldest when full.
    pub fn record(&self, event: SimEvent) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.inner.shards[thread_slot() % SHARDS];
        let mut ring = shard.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() >= self.inner.per_shard {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Slot { seq, event });
    }

    /// Events currently buffered across every shard.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far because a ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Merges every shard into one stream ordered by `(timestamp, causal
    /// sequence)` — legal input for any [`TraceSink`](crate::events::TraceSink).
    /// Non-destructive: the rings keep recording.
    pub fn dump(&self) -> Vec<SimEvent> {
        let mut slots: Vec<Slot> = Vec::with_capacity(self.len());
        for shard in self.inner.shards.iter() {
            let ring = shard.lock().unwrap_or_else(|p| p.into_inner());
            slots.extend(ring.iter().map(|s| Slot {
                seq: s.seq,
                event: s.event.clone(),
            }));
        }
        slots.sort_unstable_by_key(|s| (s.event.at, s.seq));
        slots.into_iter().map(|s| s.event).collect()
    }

    /// Writes the merged stream as JSON Lines — the exact format
    /// [`load_events`](crate::analysis::load_events) and
    /// `faasbatch trace --analyze` parse. Returns the line count.
    pub fn dump_jsonl(&self, out: &mut dyn Write) -> std::io::Result<usize> {
        let events = self.dump();
        for event in &events {
            let line = serde_json::to_string(event)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(out, "{line}")?;
        }
        out.flush()?;
        Ok(events.len())
    }

    /// Writes the post-mortem to `path` (created or truncated).
    pub fn dump_to_path(&self, path: &Path) -> std::io::Result<usize> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.dump_jsonl(&mut file)
    }

    /// Chains a panic hook that writes the post-mortem to `path` before
    /// the previous hook runs. Covers every thread in the process; the
    /// dump happens at most once even if several threads panic.
    pub fn install_panic_hook(&self, path: PathBuf) {
        let flight = self.clone();
        let armed = Arc::new(AtomicU64::new(0));
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if armed.fetch_add(1, Ordering::SeqCst) == 0 {
                match flight.dump_to_path(&path) {
                    Ok(n) => eprintln!("flight recorder: wrote {n} events to {}", path.display()),
                    Err(e) => eprintln!("flight recorder: dump failed: {e}"),
                }
            }
            previous(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use faasbatch_container::ids::{FunctionId, InvocationId};
    use faasbatch_simcore::time::SimTime;

    fn arrival(at: u64, n: u64) -> SimEvent {
        SimEvent::new(
            SimTime::from_micros(at),
            EventKind::Arrival {
                invocation: InvocationId::new(n),
                function: FunctionId::new(0),
            },
        )
    }

    #[test]
    fn dump_is_time_sorted_and_nondestructive() {
        let flight = FlightRecorder::new(64);
        flight.record(arrival(30, 2));
        flight.record(arrival(10, 0));
        flight.record(arrival(20, 1));
        let events = flight.dump();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(flight.len(), 3);
    }

    #[test]
    fn equal_timestamps_keep_causal_sequence_order() {
        let flight = FlightRecorder::new(1024);
        for n in 0..10 {
            flight.record(arrival(7, n));
        }
        let events = flight.dump();
        let ids: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::Arrival { invocation, .. } => invocation.value(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rings_bound_memory_and_count_drops() {
        let flight = FlightRecorder::new(16);
        for n in 0..1000 {
            flight.record(arrival(n, n));
        }
        assert!(flight.len() <= 16);
        assert_eq!(flight.dropped() as usize + flight.len(), 1000);
    }

    #[test]
    fn jsonl_round_trips_through_load_events() {
        let flight = FlightRecorder::new(64);
        flight.record(arrival(10, 0));
        flight.record(arrival(20, 1));
        let mut buf = Vec::new();
        assert_eq!(flight.dump_jsonl(&mut buf).unwrap(), 2);
        let parsed = crate::analysis::parse_events(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].at, SimTime::from_micros(10));
    }

    #[test]
    fn concurrent_recording_keeps_every_recent_event() {
        let flight = FlightRecorder::new(100_000);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let flight = flight.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        flight.record(arrival(t * 10_000 + i, t * 10_000 + i));
                    }
                });
            }
        });
        assert_eq!(flight.dump().len(), 8000);
        assert_eq!(flight.dropped(), 0);
    }
}
