//! # faasbatch-metrics
//!
//! Measurement plumbing for the FaaSBatch reproduction.
//!
//! The paper evaluates two axes — *invocation latency* (decomposed into
//! scheduling, cold-start, queuing, and execution; Fig. 11/12) and *resource
//! cost* (memory, container counts, CPU utilization sampled once per second;
//! Fig. 13/14). This crate provides:
//!
//! * [`latency`] — [`latency::LatencyBreakdown`] and per-invocation
//!   [`latency::InvocationRecord`]s with consistency checks;
//! * [`stats`] — [`stats::Cdf`], nearest-rank quantiles (the p98 Kraken SLO
//!   anchor), [`stats::Summary`];
//! * [`sampler`] — the 1 Hz [`sampler::ResourceSampler`];
//! * [`report`] — [`report::RunReport`], the serialisable bundle each
//!   scheduler run produces and every figure harness consumes, plus
//!   [`report::text_table`] rendering;
//! * [`events`] — the typed [`events::SimEvent`] trace stream every
//!   simulation layer emits into, the pluggable [`events::TraceSink`]s
//!   (no-op, ring, JSONL, counters, invariant auditor), and the
//!   [`events::RecordReducer`] that derives records and samples from the
//!   stream (DESIGN.md §11);
//! * [`autoscaler`] — the trace-driven [`autoscaler::AutoscalerSink`]
//!   controller that folds the stream into per-function cold-start-rate /
//!   backlog / occupancy estimates and emits [`autoscaler::ScaleAction`]s
//!   the harness applies between engine steps (DESIGN.md §12);
//! * [`analysis`] — trace analysis over the event stream: per-invocation
//!   latency attribution whose phases provably sum to end-to-end latency,
//!   critical-path extraction, trace diffing (`faasbatch trace-diff`), and
//!   typed-error JSONL loading (DESIGN.md §13);
//! * [`live`] — the wall-clock [`live::LiveTraceRecorder`] adapter that lets
//!   the live platform emit the same typed stream, so auditing and
//!   attribution work on real runs (DESIGN.md §14);
//! * [`telemetry`] — the live metrics plane: the lock-free
//!   [`telemetry::MetricRegistry`] of sharded counters/gauges/HDR-style
//!   histograms, the Prometheus/JSON [`telemetry::TelemetryServer`], and
//!   the post-mortem [`telemetry::FlightRecorder`] (DESIGN.md §18).
//!
//! # Examples
//!
//! ```
//! use faasbatch_metrics::stats::Cdf;
//! use faasbatch_simcore::time::SimDuration;
//!
//! let cdf = Cdf::from_samples((1..=100).map(SimDuration::from_millis).collect());
//! assert_eq!(cdf.quantile(0.98), SimDuration::from_millis(98));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The metrics pipeline sits on every event's path: reject avoidable
// allocations outright.
#![deny(
    clippy::unnecessary_to_owned,
    clippy::assigning_clones,
    clippy::inefficient_to_string,
    clippy::format_collect
)]

pub mod analysis;
pub mod autoscaler;
pub mod events;
pub mod latency;
pub mod live;
pub mod report;
pub mod sampler;
pub mod stats;
pub mod telemetry;
pub mod timeline;

pub use analysis::{
    against_all, diff_reports, load_events, parse_events, AttributionEngine, AttributionReport,
    Comparison, FunctionPhaseSummary, InvocationAttribution, InvocationDelta, Phase,
    PhaseBreakdown, PhaseDelta, QuantileShift, TraceDiff, TraceLoadError,
};
pub use autoscaler::{AutoscalerConfig, AutoscalerSink, AutoscalerStats, PrewarmTier, ScaleAction};
pub use events::{
    chrome_trace, chrome_trace_to, AuditorSink, CounterSink, EventKind, JsonlSink, MultiSink,
    NoopSink, RecordReducer, ReducedRun, RingSink, SimEvent, TaskKind, TraceSink, VecSink,
};
pub use latency::{InvocationRecord, LatencyBreakdown};
pub use live::LiveTraceRecorder;
pub use report::{percent_reduction, text_table, RunReport};
pub use sampler::{ResourceSample, ResourceSampler};
pub use stats::{Cdf, Summary};
pub use telemetry::{
    Counter, FlightRecorder, Gauge, Histogram, MetricRegistry, TelemetryServer, TelemetrySink,
};
pub use timeline::{Series, Timeline};
