//! Time-series views over resource samples.
//!
//! The paper samples host resources once per second (§V-B); this module
//! turns those samples into plottable series — aligned text sparklines for
//! terminals and CSV for external plotting — and computes windowed
//! aggregates (e.g. peak memory within each 5-second window).

use crate::sampler::{ResourceSample, ResourceSampler};
use faasbatch_simcore::time::{SimDuration, SimTime};

/// Which field of a [`ResourceSample`] a series tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// Allocated memory in bytes.
    MemoryBytes,
    /// Busy cores.
    BusyCores,
    /// Live containers.
    LiveContainers,
}

impl Series {
    fn value(self, s: &ResourceSample) -> f64 {
        match self {
            Series::MemoryBytes => s.memory_bytes as f64,
            Series::BusyCores => s.busy_cores,
            Series::LiveContainers => s.live_containers as f64,
        }
    }
}

/// A named time series extracted from one run's sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Label (usually the scheduler name).
    pub name: String,
    /// `(instant, value)` points in time order.
    pub points: Vec<(SimTime, f64)>,
}

impl Timeline {
    /// Extracts `series` from a sampler.
    pub fn from_sampler(name: &str, sampler: &ResourceSampler, series: Series) -> Self {
        Timeline {
            name: name.to_owned(),
            points: sampler
                .samples()
                .iter()
                .map(|s| (s.at, series.value(s)))
                .collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest value (0 when empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Downsamples into fixed windows, keeping each window's maximum (peaks
    /// are what resource provisioning must cover).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn window_max(&self, window: SimDuration) -> Timeline {
        assert!(!window.is_zero(), "window must be positive");
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        for &(t, v) in &self.points {
            let bucket = t.as_micros() / window.as_micros();
            let start = SimTime::from_micros(bucket * window.as_micros());
            match out.last_mut() {
                Some((bt, bv)) if *bt == start => *bv = bv.max(v),
                _ => out.push((start, v)),
            }
        }
        Timeline {
            name: self.name.clone(),
            points: out,
        }
    }

    /// Renders an ASCII sparkline (one char per point, 8 levels), scaled to
    /// the timeline's own maximum.
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.max();
        if max <= 0.0 {
            return LEVELS[0].to_string().repeat(self.points.len());
        }
        self.points
            .iter()
            .map(|&(_, v)| {
                let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            })
            .collect()
    }
}

/// Renders several timelines as CSV: `seconds,name1,name2,…` with one row
/// per distinct sample instant (empty cell when a series lacks that
/// instant).
pub fn to_csv(timelines: &[Timeline]) -> String {
    let mut instants: Vec<SimTime> = timelines
        .iter()
        .flat_map(|t| t.points.iter().map(|&(at, _)| at))
        .collect();
    instants.sort_unstable();
    instants.dedup();
    let mut out = String::from("seconds");
    for t in timelines {
        out.push(',');
        out.push_str(&t.name);
    }
    out.push('\n');
    for at in instants {
        out.push_str(&format!("{:.3}", at.as_secs_f64()));
        for t in timelines {
            out.push(',');
            if let Ok(i) = t.points.binary_search_by(|&(p, _)| p.cmp(&at)) {
                out.push_str(&format!("{:.3}", t.points[i].1));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> ResourceSampler {
        let mut s = ResourceSampler::new();
        for (sec, mem, cores, ctrs) in [(0, 100, 1.0, 1), (1, 300, 2.0, 3), (2, 200, 0.5, 2)] {
            s.record(ResourceSample {
                at: SimTime::from_secs(sec),
                memory_bytes: mem,
                busy_cores: cores,
                live_containers: ctrs,
            });
        }
        s
    }

    #[test]
    fn extracts_each_series() {
        let s = sampler();
        let mem = Timeline::from_sampler("x", &s, Series::MemoryBytes);
        assert_eq!(mem.len(), 3);
        assert_eq!(mem.max(), 300.0);
        let cores = Timeline::from_sampler("x", &s, Series::BusyCores);
        assert_eq!(cores.points[1].1, 2.0);
        let ctrs = Timeline::from_sampler("x", &s, Series::LiveContainers);
        assert_eq!(ctrs.points[2].1, 2.0);
    }

    #[test]
    fn window_max_keeps_peaks() {
        let t = Timeline {
            name: "t".into(),
            points: (0..10)
                .map(|i| (SimTime::from_secs(i), if i == 7 { 99.0 } else { 1.0 }))
                .collect(),
        };
        let w = t.window_max(SimDuration::from_secs(5));
        assert_eq!(w.len(), 2);
        assert_eq!(w.points[0].1, 1.0);
        assert_eq!(w.points[1].1, 99.0);
    }

    #[test]
    fn sparkline_scales_to_max() {
        let t = Timeline {
            name: "t".into(),
            points: vec![
                (SimTime::ZERO, 0.0),
                (SimTime::from_secs(1), 50.0),
                (SimTime::from_secs(2), 100.0),
            ],
        };
        let s = t.sparkline();
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
    }

    #[test]
    fn sparkline_of_zeros_is_flat() {
        let t = Timeline {
            name: "t".into(),
            points: vec![(SimTime::ZERO, 0.0), (SimTime::from_secs(1), 0.0)],
        };
        assert_eq!(t.sparkline(), "▁▁");
    }

    #[test]
    fn csv_aligns_series() {
        let a = Timeline {
            name: "a".into(),
            points: vec![(SimTime::ZERO, 1.0), (SimTime::from_secs(1), 2.0)],
        };
        let b = Timeline {
            name: "b".into(),
            points: vec![(SimTime::from_secs(1), 5.0)],
        };
        let csv = to_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "seconds,a,b");
        assert_eq!(lines[1], "0.000,1.000,");
        assert_eq!(lines[2], "1.000,2.000,5.000");
    }
}
