//! Trace-driven autoscaling controller.
//!
//! [`AutoscalerSink`] is a [`TraceSink`] that watches the event spine and
//! maintains per-function online estimates of cold-start rate, queue
//! pressure (backlog), and dispatch-window occupancy. At every sampler tick
//! the harness calls [`TraceSink::poll_actions`]; the controller turns its
//! estimates into typed [`ScaleAction`]s — pre-warm `N` containers, extend
//! or shrink a function's keep-alive — which the harness applies at that
//! safe point between engine steps.
//!
//! The controller is *observational*: it never mutates simulation state
//! itself, and a configuration whose actions are all no-ops (prewarm cap 0,
//! keep-alive floor = ceiling = the static TTL) leaves the run bit-identical
//! to an untraced one. See DESIGN.md §12 for the estimator math.

use crate::events::{EventKind, SimEvent, TraceSink};
use faasbatch_container::ids::FunctionId;
use faasbatch_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::BTreeMap;

/// One control decision emitted by an autoscaling controller.
///
/// The harness applies actions between engine steps and narrates each as a
/// [`EventKind::ScalePrewarm`] / [`EventKind::ScaleKeepAlive`] event so the
/// auditor can hold controllers to account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ScaleAction {
    /// Launch `count` pre-warmed containers for `function` now.
    Prewarm {
        /// Function to warm up.
        function: FunctionId,
        /// How many containers to launch (> 0).
        count: usize,
    },
    /// Launch `count` pre-warms for `function` into a specific start tier.
    ///
    /// Emitted instead of [`ScaleAction::Prewarm`] when the controller is
    /// tier-aware ([`AutoscalerConfig::snapshot_prewarm`]): the warm tier
    /// parks a booted container (fast next hit, holds memory); the snapshot
    /// tier boots, captures, and terminates (slower next hit, zero memory
    /// held while idle).
    PrewarmTier {
        /// Function to warm up.
        function: FunctionId,
        /// How many pre-warms to launch (> 0).
        count: usize,
        /// Which start tier to park the warmth in.
        tier: PrewarmTier,
    },
    /// Set `function`'s keep-alive TTL to `keep_alive` from now on.
    SetKeepAlive {
        /// Function whose warm pool is retargeted.
        function: FunctionId,
        /// New idle TTL (> 0).
        keep_alive: SimDuration,
    },
}

/// Which start tier a [`ScaleAction::PrewarmTier`] parks warmth in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrewarmTier {
    /// Boot → capture a snapshot → terminate: the next start restores in
    /// tens of milliseconds and no memory is held while idle. Chosen when
    /// the predicted re-use horizon outlives the keep-alive (a parked warm
    /// container would expire before its next hit).
    Snapshot,
    /// Boot → park idle in the warm pool (the classic pre-warm). Chosen
    /// when re-use is expected within the keep-alive window.
    Warm,
}

/// Tuning knobs for [`AutoscalerSink`].
///
/// The defaults pair with [`AutoscalerConfig::noop`]'s counterpart: `noop()`
/// produces a controller that provably never acts, while `default()` is an
/// active controller suitable for the ablation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// Maximum pre-warm requests that may be outstanding (requested but not
    /// yet consumed by a warm dispatch) per function. `0` disables
    /// pre-warming entirely.
    pub prewarm_cap: usize,
    /// Keep-alive is never set below this (> 0).
    pub keepalive_floor: SimDuration,
    /// Keep-alive is never set above this (≥ floor).
    pub keepalive_ceiling: SimDuration,
    /// The static keep-alive the run was configured with; the controller
    /// only emits a [`ScaleAction::SetKeepAlive`] when its target differs
    /// from the value last set (initially this one).
    pub base_keep_alive: SimDuration,
    /// Cold-start rate (EWMA of the per-batch cold fraction, in `[0, 1]`)
    /// above which the controller pre-warms.
    pub cold_rate_high: f64,
    /// EWMA smoothing factor in `(0, 1]` for the cold-rate and occupancy
    /// estimates; higher reacts faster.
    pub alpha: f64,
    /// Emit tier-aware [`ScaleAction::PrewarmTier`] actions instead of
    /// plain [`ScaleAction::Prewarm`]: functions whose predicted re-use
    /// horizon (EWMA inter-arrival gap) outlives the keep-alive are parked
    /// in the snapshot tier, the rest in the warm tier. Default off, which
    /// keeps every pre-0.9 configuration byte-identical.
    #[serde(default)]
    pub snapshot_prewarm: bool,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            prewarm_cap: 4,
            keepalive_floor: SimDuration::from_secs(2),
            keepalive_ceiling: SimDuration::from_secs(60),
            base_keep_alive: SimDuration::from_secs(600),
            cold_rate_high: 0.2,
            alpha: 0.3,
            snapshot_prewarm: false,
        }
    }
}

impl AutoscalerConfig {
    /// A controller that provably never emits an action: pre-warming is
    /// disabled and the keep-alive band is pinned to `keep_alive`. Used by
    /// the controller-never-perturbs property tests.
    pub fn noop(keep_alive: SimDuration) -> Self {
        AutoscalerConfig {
            prewarm_cap: 0,
            keepalive_floor: keep_alive,
            keepalive_ceiling: keep_alive,
            base_keep_alive: keep_alive,
            ..AutoscalerConfig::default()
        }
    }

    /// Checks the configuration invariants, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.keepalive_floor.is_zero() {
            return Err("keepalive_floor must be positive".into());
        }
        if self.keepalive_ceiling < self.keepalive_floor {
            return Err("keepalive_ceiling must be >= keepalive_floor".into());
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("alpha must be in (0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.cold_rate_high) {
            return Err("cold_rate_high must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// Per-function estimator state.
#[derive(Debug, Clone)]
struct FnState {
    /// Invocations that entered the system.
    arrived: u64,
    /// Invocations bound to a container by a dispatch decision.
    dispatched: u64,
    /// Arrivals since the last `poll_actions` call.
    arrivals_since_poll: u64,
    /// EWMA of the per-batch cold indicator (1.0 = cold, 0.0 = warm).
    cold_rate: f64,
    /// EWMA of batch size (window occupancy) at dispatch.
    occupancy: f64,
    /// Pre-warm requests issued but not yet consumed by a warm dispatch.
    outstanding_prewarm: usize,
    /// The keep-alive value last set (starts at `base_keep_alive`).
    keep_alive_set: SimDuration,
    /// Instant of the most recent arrival (for the inter-arrival EWMA).
    last_arrival: Option<SimTime>,
    /// EWMA of the inter-arrival gap in µs — the predicted re-use horizon
    /// used by tier-aware pre-warming. `None` until two arrivals are seen.
    gap_ewma_us: Option<f64>,
}

impl FnState {
    fn new(base_keep_alive: SimDuration) -> Self {
        FnState {
            arrived: 0,
            dispatched: 0,
            arrivals_since_poll: 0,
            cold_rate: 0.0,
            occupancy: 0.0,
            outstanding_prewarm: 0,
            keep_alive_set: base_keep_alive,
            last_arrival: None,
            gap_ewma_us: None,
        }
    }

    fn backlog(&self) -> u64 {
        self.arrived.saturating_sub(self.dispatched)
    }
}

/// Summary counters exposed after a run for reports and the ablation JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct AutoscalerStats {
    /// `Prewarm` actions emitted.
    pub prewarm_actions: u64,
    /// Containers requested across all `Prewarm` actions.
    pub prewarmed_containers: u64,
    /// `SetKeepAlive` actions emitted.
    pub keepalive_actions: u64,
    /// High-water mark of outstanding pre-warm requests on any function.
    pub max_outstanding_prewarm: usize,
    /// Pre-warms the tier-aware controller routed to the snapshot tier.
    pub snapshot_tier_prewarms: u64,
    /// Pre-warms the tier-aware controller routed to the warm tier.
    pub warm_tier_prewarms: u64,
}

/// The trace-driven autoscaling controller (see module docs).
///
/// # Examples
///
/// ```
/// use faasbatch_metrics::autoscaler::{AutoscalerConfig, AutoscalerSink};
/// use faasbatch_metrics::events::TraceSink;
/// use faasbatch_simcore::time::{SimDuration, SimTime};
///
/// // A no-op band never produces actions, whatever it observes.
/// let mut sink = AutoscalerSink::new(AutoscalerConfig::noop(SimDuration::from_secs(600)));
/// assert!(sink.poll_actions(SimTime::from_secs(1)).is_empty());
/// ```
#[derive(Debug)]
pub struct AutoscalerSink {
    config: AutoscalerConfig,
    functions: BTreeMap<FunctionId, FnState>,
    actions: Vec<(SimTime, ScaleAction)>,
    stats: AutoscalerStats,
}

impl AutoscalerSink {
    /// Builds a controller. Panics on an invalid configuration (validate
    /// with [`AutoscalerConfig::validate`] first when the config is
    /// user-supplied).
    pub fn new(config: AutoscalerConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid autoscaler config: {e}");
        }
        AutoscalerSink {
            config,
            functions: BTreeMap::new(),
            actions: Vec::new(),
            stats: AutoscalerStats::default(),
        }
    }

    /// The configuration the controller runs with.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Every action emitted so far, with the poll time it was emitted at.
    pub fn actions(&self) -> &[(SimTime, ScaleAction)] {
        &self.actions
    }

    /// Summary counters for reports.
    pub fn stats(&self) -> AutoscalerStats {
        self.stats
    }

    /// Current backlog estimate (arrived − dispatched) for `function`.
    pub fn backlog(&self, function: FunctionId) -> u64 {
        self.functions.get(&function).map_or(0, FnState::backlog)
    }

    /// Current cold-rate EWMA for `function` (0 when never dispatched).
    pub fn cold_rate(&self, function: FunctionId) -> f64 {
        self.functions.get(&function).map_or(0.0, |s| s.cold_rate)
    }

    /// The keep-alive the controller last set for `function` (the base
    /// value when it never acted).
    pub fn keep_alive_set(&self, function: FunctionId) -> SimDuration {
        self.functions
            .get(&function)
            .map_or(self.config.base_keep_alive, |s| s.keep_alive_set)
    }

    fn state(&mut self, function: FunctionId) -> &mut FnState {
        let base = self.config.base_keep_alive;
        self.functions
            .entry(function)
            .or_insert_with(|| FnState::new(base))
    }
}

impl TraceSink for AutoscalerSink {
    fn record(&mut self, event: &SimEvent) {
        let alpha = self.config.alpha;
        match &event.kind {
            EventKind::Arrival { function, .. } => {
                let at = event.at;
                let st = self.state(*function);
                st.arrived += 1;
                st.arrivals_since_poll += 1;
                if let Some(prev) = st.last_arrival {
                    let gap = at.saturating_duration_since(prev).as_micros() as f64;
                    st.gap_ewma_us = Some(match st.gap_ewma_us {
                        Some(e) => alpha * gap + (1.0 - alpha) * e,
                        None => gap,
                    });
                }
                st.last_arrival = Some(at);
            }
            EventKind::DispatchDecision {
                function,
                cold,
                members,
                ..
            } => {
                let n = members.len();
                let st = self.state(*function);
                st.dispatched += n as u64;
                let cold_sample = if *cold { 1.0 } else { 0.0 };
                st.cold_rate = alpha * cold_sample + (1.0 - alpha) * st.cold_rate;
                st.occupancy = alpha * n as f64 + (1.0 - alpha) * st.occupancy;
                if !*cold {
                    // A warm hit consumed one parked container; credit it
                    // against our outstanding pre-warm budget.
                    st.outstanding_prewarm = st.outstanding_prewarm.saturating_sub(1);
                }
            }
            _ => {}
        }
    }

    fn poll_actions(&mut self, now: SimTime) -> Vec<ScaleAction> {
        let cfg = self.config.clone();
        let mut out = Vec::new();
        for (&function, st) in self.functions.iter_mut() {
            let busy = st.arrivals_since_poll > 0 || st.backlog() > 0;

            // Pre-warm when cold starts are biting and traffic is live:
            // target enough outstanding warmth to cover the backlog (at
            // least one container), bounded by the per-function cap.
            if cfg.prewarm_cap > 0 && busy && st.cold_rate > cfg.cold_rate_high {
                let occupancy_need = st.occupancy.ceil() as u64;
                let want = st
                    .backlog()
                    .max(occupancy_need)
                    .max(1)
                    .min(cfg.prewarm_cap as u64) as usize;
                let deficit = want.saturating_sub(st.outstanding_prewarm);
                if deficit > 0 {
                    st.outstanding_prewarm += deficit;
                    self.stats.max_outstanding_prewarm = self
                        .stats
                        .max_outstanding_prewarm
                        .max(st.outstanding_prewarm);
                    self.stats.prewarm_actions += 1;
                    self.stats.prewarmed_containers += deficit as u64;
                    let action = if cfg.snapshot_prewarm {
                        // Predicted re-use horizon vs the keep-alive in
                        // force: if the next hit is expected after the warm
                        // container would have idled out, park a snapshot
                        // (no memory held) instead of a warm container.
                        let horizon_us = st.gap_ewma_us.unwrap_or(0.0);
                        let tier = if horizon_us > st.keep_alive_set.as_micros() as f64 {
                            self.stats.snapshot_tier_prewarms += deficit as u64;
                            PrewarmTier::Snapshot
                        } else {
                            self.stats.warm_tier_prewarms += deficit as u64;
                            PrewarmTier::Warm
                        };
                        ScaleAction::PrewarmTier {
                            function,
                            count: deficit,
                            tier,
                        }
                    } else {
                        ScaleAction::Prewarm {
                            function,
                            count: deficit,
                        }
                    };
                    self.actions.push((now, action));
                    out.push(action);
                }
            }

            // Keep-alive: hold the ceiling while the function is live so
            // warm containers survive gaps between bursts, relax to the
            // floor when it goes quiet. Only emit on change.
            let target = if busy {
                cfg.keepalive_ceiling
            } else {
                cfg.keepalive_floor
            };
            if target != st.keep_alive_set {
                st.keep_alive_set = target;
                self.stats.keepalive_actions += 1;
                let action = ScaleAction::SetKeepAlive {
                    function,
                    keep_alive: target,
                };
                self.actions.push((now, action));
                out.push(action);
            }

            st.arrivals_since_poll = 0;
        }
        out
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasbatch_container::ids::{ContainerId, InvocationId};

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    fn arrival(at: u64, func: u32, inv: u64) -> SimEvent {
        SimEvent::new(
            SimTime::from_millis(at),
            EventKind::Arrival {
                invocation: InvocationId::new(inv),
                function: f(func),
            },
        )
    }

    fn dispatch(at: u64, func: u32, cold: bool, members: &[u64]) -> SimEvent {
        SimEvent::new(
            SimTime::from_millis(at),
            EventKind::DispatchDecision {
                batch: 0,
                function: f(func),
                container: ContainerId::new(1),
                cold,
                restored: false,
                barrier: false,
                members: members.iter().copied().map(InvocationId::new).collect(),
            },
        )
    }

    #[test]
    fn noop_band_never_acts() {
        let mut s = AutoscalerSink::new(AutoscalerConfig::noop(SimDuration::from_secs(600)));
        for i in 0..20 {
            s.record(&arrival(i, 0, i));
            s.record(&dispatch(i, 0, true, &[i]));
        }
        assert!(s.poll_actions(SimTime::from_secs(1)).is_empty());
        assert!(s.actions().is_empty());
        assert_eq!(s.stats(), AutoscalerStats::default());
    }

    #[test]
    fn cold_bursts_trigger_prewarm_up_to_cap() {
        let cfg = AutoscalerConfig {
            prewarm_cap: 3,
            base_keep_alive: SimDuration::from_secs(600),
            keepalive_ceiling: SimDuration::from_secs(600),
            keepalive_floor: SimDuration::from_secs(600),
            ..AutoscalerConfig::default()
        };
        let mut s = AutoscalerSink::new(cfg);
        // Ten cold singleton dispatches with a large backlog behind them.
        for i in 0..30 {
            s.record(&arrival(i, 0, i));
        }
        for i in 0..10 {
            s.record(&dispatch(100 + i, 0, true, &[i]));
        }
        let actions = s.poll_actions(SimTime::from_secs(1));
        assert_eq!(
            actions,
            vec![ScaleAction::Prewarm {
                function: f(0),
                count: 3
            }]
        );
        // Cap already saturated: polling again adds nothing.
        assert!(s.poll_actions(SimTime::from_secs(2)).is_empty());
        assert_eq!(s.stats().max_outstanding_prewarm, 3);
        // A warm dispatch frees one slot of budget.
        s.record(&arrival(200, 0, 40));
        s.record(&dispatch(201, 0, false, &[40]));
        let actions = s.poll_actions(SimTime::from_secs(3));
        assert_eq!(
            actions,
            vec![ScaleAction::Prewarm {
                function: f(0),
                count: 1
            }]
        );
        assert_eq!(s.stats().max_outstanding_prewarm, 3);
    }

    #[test]
    fn tier_aware_prewarm_picks_tier_by_reuse_horizon() {
        let cfg = AutoscalerConfig {
            prewarm_cap: 2,
            base_keep_alive: SimDuration::from_secs(10),
            keepalive_ceiling: SimDuration::from_secs(10),
            keepalive_floor: SimDuration::from_secs(10),
            snapshot_prewarm: true,
            ..AutoscalerConfig::default()
        };

        // Function 0: arrivals every 60 s — far past the 10 s keep-alive,
        // so a parked warm container would expire before its next hit.
        let mut s = AutoscalerSink::new(cfg.clone());
        for i in 0..5u64 {
            s.record(&arrival(i * 60_000, 0, i));
            s.record(&dispatch(i * 60_000, 0, true, &[i]));
        }
        let actions = s.poll_actions(SimTime::from_secs(301));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ScaleAction::PrewarmTier {
                    tier: PrewarmTier::Snapshot,
                    ..
                }
            )),
            "{actions:?}"
        );
        assert!(s.stats().snapshot_tier_prewarms > 0);
        assert_eq!(s.stats().warm_tier_prewarms, 0);

        // Function 1: arrivals every 100 ms — well inside the keep-alive,
        // so classic warm parking wins.
        let mut s = AutoscalerSink::new(cfg);
        for i in 0..5u64 {
            s.record(&arrival(i * 100, 1, i));
            s.record(&dispatch(i * 100, 1, true, &[i]));
        }
        let actions = s.poll_actions(SimTime::from_secs(1));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ScaleAction::PrewarmTier {
                    tier: PrewarmTier::Warm,
                    ..
                }
            )),
            "{actions:?}"
        );
        assert!(s.stats().warm_tier_prewarms > 0);
        assert_eq!(s.stats().snapshot_tier_prewarms, 0);
    }

    #[test]
    fn keepalive_follows_traffic_between_floor_and_ceiling() {
        let cfg = AutoscalerConfig {
            prewarm_cap: 0,
            keepalive_floor: SimDuration::from_secs(2),
            keepalive_ceiling: SimDuration::from_secs(60),
            base_keep_alive: SimDuration::from_secs(10),
            ..AutoscalerConfig::default()
        };
        let mut s = AutoscalerSink::new(cfg);
        s.record(&arrival(0, 0, 0));
        // Live traffic ⇒ extend to the ceiling.
        assert_eq!(
            s.poll_actions(SimTime::from_secs(1)),
            vec![ScaleAction::SetKeepAlive {
                function: f(0),
                keep_alive: SimDuration::from_secs(60)
            }]
        );
        assert_eq!(s.keep_alive_set(f(0)), SimDuration::from_secs(60));
        // Still a backlog (arrived but never dispatched) ⇒ stay up, and the
        // value is unchanged so nothing is emitted.
        assert!(s.poll_actions(SimTime::from_secs(2)).is_empty());
        // Drain the backlog; the function goes quiet ⇒ shrink to the floor.
        s.record(&dispatch(2500, 0, true, &[0]));
        assert_eq!(
            s.poll_actions(SimTime::from_secs(3)),
            vec![ScaleAction::SetKeepAlive {
                function: f(0),
                keep_alive: SimDuration::from_secs(2)
            }]
        );
        assert_eq!(s.stats().keepalive_actions, 2);
    }

    #[test]
    fn backlog_tracks_arrived_minus_dispatched() {
        let mut s = AutoscalerSink::new(AutoscalerConfig::default());
        for i in 0..5 {
            s.record(&arrival(i, 1, i));
        }
        assert_eq!(s.backlog(f(1)), 5);
        s.record(&dispatch(10, 1, true, &[0, 1, 2]));
        assert_eq!(s.backlog(f(1)), 2);
        assert!(s.cold_rate(f(1)) > 0.0);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let c = AutoscalerConfig {
            keepalive_floor: SimDuration::ZERO,
            ..AutoscalerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AutoscalerConfig {
            keepalive_ceiling: SimDuration::from_millis(1),
            ..AutoscalerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AutoscalerConfig {
            alpha: 0.0,
            ..AutoscalerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AutoscalerConfig {
            cold_rate_high: 1.5,
            ..AutoscalerConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(AutoscalerConfig::default().validate().is_ok());
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let c = AutoscalerConfig::default();
        let json = serde_json::to_string(&c).expect("serialize");
        let back: AutoscalerConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
