//! Integration properties of the telemetry plane (DESIGN.md §18):
//! concurrent histogram recording merges losslessly, and identical event
//! streams fold into byte-identical registry snapshots.

use faasbatch_container::ids::{ContainerId, FunctionId, InvocationId};
use faasbatch_metrics::events::{EventKind, SimEvent, TraceSink};
use faasbatch_metrics::telemetry::{bucket_of, Histogram, MetricRegistry, TelemetrySink};
use faasbatch_simcore::time::SimTime;
use proptest::prelude::*;
use std::thread;

proptest! {
    /// Recording the same multiset of values from several threads (each
    /// through its own clone of the handle) merges to the exact count and
    /// sum, and every quantile lands within one bucket of the
    /// single-threaded sorted oracle.
    #[test]
    fn concurrent_recording_merges_exactly(
        values in proptest::collection::vec(0u64..2_000_000, 1..400),
        threads in 2usize..6,
    ) {
        let hist = Histogram::new();
        thread::scope(|scope| {
            for t in 0..threads {
                let handle = hist.clone();
                let slice: Vec<u64> = values
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                scope.spawn(move || {
                    for v in slice {
                        handle.record(v);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.95, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let got = snap.quantile(q);
            prop_assert!(
                bucket_of(got).abs_diff(bucket_of(oracle)) <= 1,
                "q{}: got {} oracle {}",
                q,
                got,
                oracle
            );
        }
    }

    /// A histogram merged from concurrent writers renders the same sparse
    /// cumulative exposition as one filled sequentially with the same
    /// values — shard assignment is invisible in snapshots.
    #[test]
    fn sharded_and_sequential_snapshots_agree(
        values in proptest::collection::vec(0u64..500_000, 1..200),
    ) {
        let concurrent = Histogram::new();
        thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(4)) {
                let handle = concurrent.clone();
                let chunk = chunk.to_vec();
                scope.spawn(move || {
                    for v in chunk {
                        handle.record(v);
                    }
                });
            }
        });
        let sequential = Histogram::new();
        for &v in &values {
            sequential.record(v);
        }
        prop_assert_eq!(concurrent.snapshot(), sequential.snapshot());
    }
}

/// A deterministic synthetic event stream exercising every branch the
/// sink folds: arrivals, dispatches (warm and cold), rejects, completes.
fn synthetic_stream(invocations: u64) -> Vec<SimEvent> {
    let mut events = Vec::new();
    for i in 0..invocations {
        let inv = InvocationId::new(i);
        let function = FunctionId::new((i % 5) as u32);
        let at = i * 137;
        events.push(SimEvent::new(
            SimTime::from_micros(at),
            EventKind::Arrival {
                invocation: inv,
                function,
            },
        ));
        if i % 11 == 10 {
            events.push(SimEvent::new(
                SimTime::from_micros(at + 5),
                EventKind::GatewayReject {
                    invocation: inv,
                    shard: i % 4,
                    depth: 64,
                },
            ));
            continue;
        }
        events.push(SimEvent::new(
            SimTime::from_micros(at + 40),
            EventKind::DispatchDecision {
                batch: i,
                function,
                container: ContainerId::new(i % 3),
                cold: i % 3 == 0,
                restored: false,
                barrier: false,
                members: vec![inv],
            },
        ));
        events.push(SimEvent::new(
            SimTime::from_micros(at + 40 + (i % 7) * 900),
            EventKind::InvocationComplete {
                invocation: inv,
                batch: Some(i),
                member: Some(0),
            },
        ));
    }
    events
}

fn fold(events: &[SimEvent]) -> String {
    let registry = MetricRegistry::new();
    let mut sink = TelemetrySink::new(registry.clone());
    for event in events {
        sink.record(event);
    }
    registry.render_json()
}

/// Two identical runs routed through [`TelemetrySink`] must produce
/// byte-identical `/json` snapshots — registration order, folded values,
/// and formatting are all functions of the event stream alone.
#[test]
fn identical_streams_render_byte_identical_json() {
    let stream = synthetic_stream(200);
    let a = fold(&stream);
    let b = fold(&stream);
    assert_eq!(a, b, "identical streams diverged in /json output");
    assert!(a.contains("\"faasbatch_arrivals_total\""));
    assert!(a.contains("\"faasbatch_e2e_latency_us\""));
    assert!(a.ends_with('\n'));
}

/// Different streams must *not* collide — guards against the snapshot
/// accidentally ignoring folded state.
#[test]
fn different_streams_render_differently() {
    assert_ne!(fold(&synthetic_stream(200)), fold(&synthetic_stream(201)));
}
