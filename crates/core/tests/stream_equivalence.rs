//! Property test pinning the streaming workload path to the materialised
//! one: for any seed/size/shape, `WorkloadStream` must yield bit-identical
//! invocation sequences to the eager builders, and replaying either form
//! through any of the six schedulers must produce bit-identical reports
//! AND bit-identical traced event streams (DESIGN.md §16).

use faasbatch_core::policy::{run_faasbatch_source_traced, run_faasbatch_traced, FaasBatchConfig};
use faasbatch_core::scheduler_kind::{SchedulerKind, SchedulerSetup};
use faasbatch_metrics::events::{SimEvent, VecSink};
use faasbatch_metrics::report::RunReport;
use faasbatch_metrics::TraceSink;
use faasbatch_schedulers::config::SimConfig;
use faasbatch_schedulers::harness::{run_simulation_traced, run_source_traced};
use faasbatch_schedulers::policy::Policy;
use faasbatch_simcore::rng::DetRng;
use faasbatch_simcore::time::SimDuration;
use faasbatch_trace::stream::WorkloadStream;
use faasbatch_trace::workload::{cpu_workload, io_workload, Workload, WorkloadConfig};
use proptest::{prop_assert_eq, proptest};

const WINDOW: SimDuration = SimDuration::from_millis(200);

fn events(sink: Box<dyn TraceSink>) -> Vec<SimEvent> {
    sink.as_any()
        .downcast_ref::<VecSink>()
        .expect("vec sink comes back")
        .events()
        .to_vec()
}

fn policy(scheduler: usize) -> (Box<dyn Policy>, Option<SimDuration>) {
    assert_ne!(
        SchedulerKind::ALL[scheduler],
        SchedulerKind::FaasBatch,
        "faasbatch runs through its own entry point"
    );
    SchedulerKind::ALL[scheduler].build(&SchedulerSetup::new(WINDOW))
}

/// Replays `workload` (materialised) and `stream` (on demand) under
/// scheduler index `scheduler` ([`SchedulerKind::ALL`] order: 0=vanilla,
/// 1=sfs, 2=kraken, 3=hiku, 4=core-late-bind, 5=faasbatch) and returns
/// both `(report, events)` pairs.
fn replay_both(
    workload: &Workload,
    stream: WorkloadStream,
    scheduler: usize,
) -> ((RunReport, Vec<SimEvent>), (RunReport, Vec<SimEvent>)) {
    if SchedulerKind::ALL[scheduler] == SchedulerKind::FaasBatch {
        let (ra, sa) = run_faasbatch_traced(
            workload,
            SimConfig::default(),
            FaasBatchConfig::default(),
            "prop",
            Box::new(VecSink::new()),
        );
        let (rb, sb) = run_faasbatch_source_traced(
            stream,
            SimConfig::default(),
            FaasBatchConfig::default(),
            "prop",
            Box::new(VecSink::new()),
        );
        return ((ra, events(sa)), (rb, events(sb)));
    }
    let (pa, interval) = policy(scheduler);
    let (ra, sa) = run_simulation_traced(
        pa,
        workload,
        SimConfig::default(),
        "prop",
        interval,
        Box::new(VecSink::new()),
    );
    let (pb, interval) = policy(scheduler);
    let (rb, sb) = run_source_traced(
        pb,
        stream,
        SimConfig::default(),
        "prop",
        interval,
        Box::new(VecSink::new()),
    );
    ((ra, events(sa)), (rb, events(sb)))
}

proptest! {
    #[test]
    fn streamed_replay_is_bit_identical_to_materialised(
        seed in 0u64..10_000,
        total in 16usize..96,
        functions in 1usize..6,
        scheduler in 0usize..6,
        io in 0usize..2,
    ) {
        let cfg = WorkloadConfig {
            total,
            span: SimDuration::from_secs(8),
            functions,
            bursts: 1 + total % 3,
            ..WorkloadConfig::default()
        };
        let rng = DetRng::new(seed);
        let (eager, stream) = if io == 0 {
            (cpu_workload(&rng, &cfg), WorkloadStream::cpu(&rng, &cfg))
        } else {
            (io_workload(&rng, &cfg), WorkloadStream::io(&rng, &cfg))
        };

        // The invocation sequences themselves are bit-identical.
        let materialised = if io == 0 {
            WorkloadStream::cpu(&rng, &cfg).materialise()
        } else {
            WorkloadStream::io(&rng, &cfg).materialise()
        };
        prop_assert_eq!(&eager, &materialised, "invocation sequences diverge");

        // So are full traced replays under every scheduler.
        let ((report_a, events_a), (report_b, events_b)) =
            replay_both(&eager, stream, scheduler);
        prop_assert_eq!(report_a, report_b, "reports diverge (scheduler {})", scheduler);
        prop_assert_eq!(
            events_a.len(),
            events_b.len(),
            "event counts diverge (scheduler {})",
            scheduler
        );
        prop_assert_eq!(events_a, events_b, "event streams diverge (scheduler {})", scheduler);
    }
}
