//! FaaSBatch as a scheduling policy over the shared harness.
//!
//! This wires the three modules together exactly as §III describes:
//! the [`InvokeMapper`] buffers the request
//! queue for one dispatch window and emits function groups; the
//! Inline-Parallel Producer maps each group onto **one** container and
//! expands its invocations as parallel threads
//! ([`ExecMode::Parallel`]); and the Resource Multiplexer is switched on
//! inside every container so repeated client creations are served from
//! cache. Both the window and the multiplexer are configurable for the
//! dispatch-interval sweeps (Fig. 13/14) and the ablation study.

use crate::mapper::InvokeMapper;
use faasbatch_metrics::events::TraceSink;
use faasbatch_metrics::report::RunReport;
use faasbatch_schedulers::config::SimConfig;
use faasbatch_schedulers::harness::{
    run_simulation, run_simulation_traced, run_source, run_source_traced,
};
use faasbatch_schedulers::policy::{Completion, Ctx, DispatchRequest, ExecMode, Policy};
use faasbatch_simcore::time::SimDuration;
use faasbatch_trace::stream::InvocationSource;
use faasbatch_trace::workload::{Invocation, Workload};
use serde::{Deserialize, Serialize};

/// FaaSBatch configuration knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaasBatchConfig {
    /// Dispatch window (the paper's default: 0.2 s; swept 0.01–0.5 s in
    /// Fig. 13/14).
    pub window: SimDuration,
    /// Enable the Resource Multiplexer (off = ablation).
    pub multiplex: bool,
    /// Optional cap on group size (None = batch all concurrent invocations,
    /// the paper's strategy).
    pub max_group_size: Option<usize>,
    /// Optional per-container CPU limit (customer-specified `cpu_count`).
    pub cpu_limit: Option<f64>,
    /// Hold each group's responses until the whole group finishes (the
    /// paper's prototype semantics — its HTTP request returns only after
    /// all invocations of the function group complete). Off by default:
    /// early return, the paper's stated future work.
    pub batch_responses: bool,
}

impl Default for FaasBatchConfig {
    fn default() -> Self {
        FaasBatchConfig {
            window: InvokeMapper::DEFAULT_WINDOW,
            multiplex: true,
            max_group_size: None,
            cpu_limit: None,
            batch_responses: false,
        }
    }
}

impl FaasBatchConfig {
    /// Config with a specific dispatch window.
    pub fn with_window(window: SimDuration) -> Self {
        FaasBatchConfig {
            window,
            ..FaasBatchConfig::default()
        }
    }
}

/// The FaaSBatch scheduler (window batching + inline parallelism +
/// resource multiplexing).
#[derive(Debug, Clone)]
pub struct FaasBatchPolicy {
    cfg: FaasBatchConfig,
    mapper: InvokeMapper,
}

impl FaasBatchPolicy {
    /// Window-timer token.
    const WINDOW: u64 = 0;

    /// Creates the policy from its configuration.
    pub fn new(cfg: FaasBatchConfig) -> Self {
        let mut mapper = InvokeMapper::new(cfg.window);
        if let Some(cap) = cfg.max_group_size {
            mapper = mapper.with_max_group(cap);
        }
        FaasBatchPolicy { cfg, mapper }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FaasBatchConfig {
        &self.cfg
    }
}

impl Default for FaasBatchPolicy {
    fn default() -> Self {
        FaasBatchPolicy::new(FaasBatchConfig::default())
    }
}

impl Policy for FaasBatchPolicy {
    fn name(&self) -> String {
        if self.cfg.multiplex {
            "faasbatch".to_owned()
        } else {
            "faasbatch-nomux".to_owned()
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.window, Self::WINDOW);
    }

    fn on_arrival(&mut self, _ctx: &mut Ctx<'_>, invocation: &Invocation) {
        self.mapper.observe(invocation.clone());
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        for group in self.mapper.drain() {
            let mut req = DispatchRequest::new(group.invocations, ExecMode::Parallel);
            req.multiplex_clients = self.cfg.multiplex;
            req.cpu_limit = self.cfg.cpu_limit;
            req.completion = if self.cfg.batch_responses {
                Completion::PerBatch
            } else {
                Completion::PerInvocation
            };
            ctx.dispatch(req);
        }
        if !ctx.all_done() {
            ctx.set_timer(self.cfg.window, Self::WINDOW);
        }
    }
}

/// Runs FaaSBatch over `workload` — convenience wrapper around the shared
/// harness.
///
/// # Examples
///
/// ```
/// use faasbatch_core::policy::{run_faasbatch, FaasBatchConfig};
/// use faasbatch_schedulers::config::SimConfig;
/// use faasbatch_simcore::rng::DetRng;
/// use faasbatch_simcore::time::SimDuration;
/// use faasbatch_trace::workload::{cpu_workload, WorkloadConfig};
///
/// let w = cpu_workload(&DetRng::new(42), &WorkloadConfig {
///     total: 20, span: SimDuration::from_secs(5), functions: 2, bursts: 2,
///     ..WorkloadConfig::default()
/// });
/// let report = run_faasbatch(&w, SimConfig::default(), FaasBatchConfig::default(), "cpu");
/// assert_eq!(report.records.len(), 20);
/// ```
pub fn run_faasbatch(
    workload: &Workload,
    sim: SimConfig,
    cfg: FaasBatchConfig,
    label: &str,
) -> RunReport {
    let window = cfg.window;
    run_simulation(
        Box::new(FaasBatchPolicy::new(cfg)),
        workload,
        sim,
        label,
        Some(window),
    )
}

/// [`run_faasbatch`] over any [`InvocationSource`] — e.g. a
/// [`WorkloadStream`](faasbatch_trace::stream::WorkloadStream) sampling
/// invocations on demand, so day-scale replays never materialise the full
/// trace.
pub fn run_faasbatch_source(
    source: impl InvocationSource,
    sim: SimConfig,
    cfg: FaasBatchConfig,
    label: &str,
) -> RunReport {
    let window = cfg.window;
    run_source(
        Box::new(FaasBatchPolicy::new(cfg)),
        source,
        sim,
        label,
        Some(window),
    )
}

/// [`run_faasbatch_source`] with an observable event stream.
pub fn run_faasbatch_source_traced(
    source: impl InvocationSource,
    sim: SimConfig,
    cfg: FaasBatchConfig,
    label: &str,
    sink: Box<dyn TraceSink>,
) -> (RunReport, Box<dyn TraceSink>) {
    let window = cfg.window;
    run_source_traced(
        Box::new(FaasBatchPolicy::new(cfg)),
        source,
        sim,
        label,
        Some(window),
        sink,
    )
}

/// [`run_faasbatch`] with an observable event stream: every event the run
/// derives its report from also flows through `sink`, which is returned for
/// downcasting (DESIGN.md §11).
pub fn run_faasbatch_traced(
    workload: &Workload,
    sim: SimConfig,
    cfg: FaasBatchConfig,
    label: &str,
    sink: Box<dyn TraceSink>,
) -> (RunReport, Box<dyn TraceSink>) {
    let window = cfg.window;
    run_simulation_traced(
        Box::new(FaasBatchPolicy::new(cfg)),
        workload,
        sim,
        label,
        Some(window),
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasbatch_schedulers::vanilla::Vanilla;
    use faasbatch_simcore::rng::DetRng;
    use faasbatch_trace::workload::{cpu_workload, io_workload, WorkloadConfig};

    fn wl(total: usize, functions: usize, seed: u64) -> Workload {
        cpu_workload(
            &DetRng::new(seed),
            &WorkloadConfig {
                total,
                span: SimDuration::from_secs(10),
                functions,
                bursts: 3,
                ..WorkloadConfig::default()
            },
        )
    }

    #[test]
    fn completes_cpu_workload_parallel_no_queuing() {
        let w = wl(60, 4, 1);
        let report = run_faasbatch(&w, SimConfig::default(), FaasBatchConfig::default(), "cpu");
        assert_eq!(report.records.len(), 60);
        assert!(report.inconsistencies().is_empty());
        // Inline parallelism: no queuing inside containers.
        assert!(report.records.iter().all(|r| r.latency.queuing.is_zero()));
        assert_eq!(report.scheduler, "faasbatch");
    }

    #[test]
    fn provisions_far_fewer_containers_than_vanilla() {
        // A concentrated burst — the regime the paper targets (Fig. 13(b)).
        let w = cpu_workload(
            &DetRng::new(2),
            &WorkloadConfig {
                total: 120,
                span: SimDuration::from_millis(300),
                functions: 4,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let fb = run_faasbatch(&w, SimConfig::default(), FaasBatchConfig::default(), "cpu");
        let van = run_simulation(
            Box::new(Vanilla::new()),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        assert!(
            fb.provisioned_containers * 2 < van.provisioned_containers,
            "faasbatch {} vs vanilla {}",
            fb.provisioned_containers,
            van.provisioned_containers
        );
    }

    #[test]
    fn window_batches_share_containers() {
        // Everything arrives in one window for one function → exactly one
        // container.
        let w = cpu_workload(
            &DetRng::new(3),
            &WorkloadConfig {
                total: 30,
                span: SimDuration::from_millis(100),
                functions: 1,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let report = run_faasbatch(&w, SimConfig::default(), FaasBatchConfig::default(), "cpu");
        assert_eq!(report.provisioned_containers, 1);
        assert!((report.invocations_per_container() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn multiplexer_eliminates_repeated_client_creation() {
        let w = io_workload(
            &DetRng::new(4),
            &WorkloadConfig {
                total: 80,
                span: SimDuration::from_secs(10),
                functions: 2,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        );
        let on = run_faasbatch(&w, SimConfig::default(), FaasBatchConfig::default(), "io");
        let off = run_faasbatch(
            &w,
            SimConfig::default(),
            FaasBatchConfig {
                multiplex: false,
                ..FaasBatchConfig::default()
            },
            "io",
        );
        assert_eq!(on.client_requests, 80);
        assert_eq!(off.client_requests, 80);
        assert_eq!(
            off.clients_created, 80,
            "without the multiplexer every request builds"
        );
        assert!(
            on.clients_created <= on.provisioned_containers,
            "multiplexed creations ({}) bounded by containers ({})",
            on.clients_created,
            on.provisioned_containers
        );
        assert!(on.client_memory_per_request() < off.client_memory_per_request() / 4.0);
        // And it is faster end-to-end.
        assert!(on.end_to_end_cdf().mean() < off.end_to_end_cdf().mean());
    }

    #[test]
    fn larger_window_means_fewer_containers() {
        let w = wl(200, 4, 5);
        let narrow = run_faasbatch(
            &w,
            SimConfig::default(),
            FaasBatchConfig::with_window(SimDuration::from_millis(10)),
            "cpu",
        );
        let wide = run_faasbatch(
            &w,
            SimConfig::default(),
            FaasBatchConfig::with_window(SimDuration::from_millis(500)),
            "cpu",
        );
        assert!(
            wide.provisioned_containers <= narrow.provisioned_containers,
            "wide {} vs narrow {}",
            wide.provisioned_containers,
            narrow.provisioned_containers
        );
    }

    #[test]
    fn max_group_size_is_respected() {
        let w = cpu_workload(
            &DetRng::new(6),
            &WorkloadConfig {
                total: 40,
                span: SimDuration::from_millis(100),
                functions: 1,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let report = run_faasbatch(
            &w,
            SimConfig::default(),
            FaasBatchConfig {
                max_group_size: Some(10),
                ..FaasBatchConfig::default()
            },
            "cpu",
        );
        // 40 invocations in one window, cap 10 → 4 containers.
        assert_eq!(report.provisioned_containers, 4);
    }

    #[test]
    fn batch_responses_hold_until_group_finishes() {
        // One window, one function, varying work: under PerBatch semantics
        // every member completes at the same instant (the group barrier) and
        // the barrier wait shows up as queuing.
        let w = cpu_workload(
            &DetRng::new(8),
            &WorkloadConfig {
                total: 20,
                span: SimDuration::from_millis(100),
                functions: 1,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let batched = run_faasbatch(
            &w,
            SimConfig::default(),
            FaasBatchConfig {
                batch_responses: true,
                ..FaasBatchConfig::default()
            },
            "cpu",
        );
        assert_eq!(batched.records.len(), 20);
        assert!(batched.inconsistencies().is_empty());
        let completions: std::collections::HashSet<_> =
            batched.records.iter().map(|r| r.completion).collect();
        assert_eq!(completions.len(), 1, "all members share the batch barrier");
        assert!(
            batched.records.iter().any(|r| !r.latency.queuing.is_zero()),
            "someone must wait at the barrier"
        );
        // Early return strictly dominates on mean latency.
        let early = run_faasbatch(&w, SimConfig::default(), FaasBatchConfig::default(), "cpu");
        assert!(early.end_to_end_cdf().mean() < batched.end_to_end_cdf().mean());
        // The barrier never delays the group's final completion instant
        // (the latency *max* can differ: under the barrier the earliest
        // arriver owns the longest span, not the last finisher).
        let last =
            |r: &faasbatch_metrics::report::RunReport| r.records.iter().map(|x| x.completion).max();
        assert_eq!(last(&early), last(&batched));
    }

    #[test]
    fn deterministic_runs() {
        let w = wl(50, 3, 7);
        let a = run_faasbatch(&w, SimConfig::default(), FaasBatchConfig::default(), "cpu");
        let b = run_faasbatch(&w, SimConfig::default(), FaasBatchConfig::default(), "cpu");
        assert_eq!(a, b);
    }
}
