//! A live (real-thread) FaaSBatch platform.
//!
//! This is the runnable counterpart of the simulated policy: a front door
//! that accepts invocations, a dispatcher that batches them per function
//! across a wall-clock window (Invoke Mapper), warm container reuse, group
//! expansion on real OS threads (Inline-Parallel Producer), and a
//! per-container [`ResourceMultiplexer`] for storage clients. The examples
//! and the motivation benchmarks (Fig. 1/4/5) run on this.

use crate::multiplexer::{mux_trace_events, MultiplexerStats, ResourceMultiplexer};
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use faasbatch_container::ids::ContainerId;
use faasbatch_metrics::events::SimEvent;
use faasbatch_simcore::time::SimTime;
use faasbatch_storage::client::{ClientConfig, StorageClient, StorageSdk};
use faasbatch_storage::object_store::ObjectStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors returned by the live platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The invoked function name is not registered.
    UnknownFunction(String),
    /// The platform is shutting down and cannot accept work.
    ShuttingDown,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            PlatformError::ShuttingDown => write!(f, "platform is shutting down"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Per-invocation outcome reported back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvokeOutcome {
    /// Time spent waiting for the dispatch window and a container.
    pub queued: Duration,
    /// Time the handler body ran.
    pub execution: Duration,
    /// Whether this batch had to create a fresh container.
    pub cold: bool,
    /// Whether the handler panicked (the platform contains the panic; the
    /// rest of the batch and the container survive).
    pub panicked: bool,
}

impl InvokeOutcome {
    /// Queued + execution.
    pub fn total(&self) -> Duration {
        self.queued + self.execution
    }
}

/// Aggregate view over a set of live outcomes (one burst, one benchmark
/// run, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeSummary {
    /// Outcomes aggregated.
    pub count: usize,
    /// Cold invocations.
    pub cold: usize,
    /// Panicked invocations.
    pub panicked: usize,
    /// Mean queued time.
    pub mean_queued: Duration,
    /// Mean execution time.
    pub mean_execution: Duration,
    /// Worst end-to-end time.
    pub max_total: Duration,
}

impl OutcomeSummary {
    /// Summarises `outcomes` (all zeroes when empty).
    pub fn from_outcomes(outcomes: &[InvokeOutcome]) -> OutcomeSummary {
        if outcomes.is_empty() {
            return OutcomeSummary::default();
        }
        let n = outcomes.len() as u32;
        OutcomeSummary {
            count: outcomes.len(),
            cold: outcomes.iter().filter(|o| o.cold).count(),
            panicked: outcomes.iter().filter(|o| o.panicked).count(),
            mean_queued: outcomes.iter().map(|o| o.queued).sum::<Duration>() / n,
            mean_execution: outcomes.iter().map(|o| o.execution).sum::<Duration>() / n,
            max_total: outcomes
                .iter()
                .map(InvokeOutcome::total)
                .max()
                .unwrap_or_default(),
        }
    }
}

/// Handle to a pending invocation.
#[derive(Debug)]
pub struct InvokeTicket {
    rx: Receiver<InvokeOutcome>,
}

impl InvokeTicket {
    /// Blocks until the invocation completes.
    ///
    /// # Panics
    ///
    /// Panics if the platform was torn down before the invocation ran
    /// (cannot happen through the public API, which drains on shutdown).
    pub fn wait(self) -> InvokeOutcome {
        self.rx.recv().expect("invocation dropped by platform")
    }
}

/// The services visible to a handler inside its container.
pub struct ContainerEnv {
    id: u64,
    multiplexer: ResourceMultiplexer<StorageClient>,
    sdk: StorageSdk,
    multiplex: bool,
}

impl fmt::Debug for ContainerEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContainerEnv")
            .field("id", &self.id)
            .finish()
    }
}

impl ContainerEnv {
    /// This container's id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Obtains a storage client for `config` — through the Resource
    /// Multiplexer when it is enabled (one creation per distinct config per
    /// container), or by building a fresh client every time (the baseline
    /// behaviour the paper measures in Fig. 4/5).
    pub fn storage_client(&self, config: &ClientConfig) -> Arc<StorageClient> {
        if self.multiplex {
            self.multiplexer
                .get_or_create(config, || self.sdk.connect(config))
        } else {
            Arc::new(self.sdk.connect(config))
        }
    }

    /// Hit/miss counters of this container's multiplexer.
    pub fn multiplexer_stats(&self) -> MultiplexerStats {
        self.multiplexer.stats()
    }

    /// Drains this container's multiplexer journal as typed trace events
    /// stamped at `at` — live containers run on the wall clock, so the
    /// caller chooses the simulated timestamp under which the history joins
    /// a [`SimEvent`] stream (DESIGN.md §11).
    pub fn take_mux_trace(&self, at: SimTime) -> Vec<SimEvent> {
        let events = self.multiplexer.take_events();
        mux_trace_events(ContainerId::new(self.id), at, &events)
    }
}

/// What a handler sees for one invocation.
pub struct InvocationEnv<'a> {
    /// Caller-supplied payload.
    pub payload: Bytes,
    /// The container's shared services.
    pub container: &'a ContainerEnv,
}

/// A registered function body.
pub type Handler = Arc<dyn Fn(&InvocationEnv<'_>) + Send + Sync>;

struct Request {
    function: usize,
    payload: Bytes,
    enqueued: Instant,
    reply: Sender<InvokeOutcome>,
}

enum Message {
    Invoke(Request),
    Flush(Sender<()>),
}

/// Aggregate counters of a live platform.
#[derive(Debug, Default)]
pub struct PlatformStats {
    /// Containers created (cold starts).
    pub containers_created: AtomicU64,
    /// Batches dispatched.
    pub batches: AtomicU64,
    /// Invocations completed.
    pub invocations: AtomicU64,
    /// Storage clients actually built across all containers.
    pub clients_created: AtomicU64,
}

/// Builder for [`FaasBatchPlatform`].
pub struct PlatformBuilder {
    window: Duration,
    multiplex: bool,
    cold_start_delay: Duration,
    store: ObjectStore,
    functions: Vec<(String, Handler)>,
}

impl fmt::Debug for PlatformBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlatformBuilder")
            .field("window", &self.window)
            .field("multiplex", &self.multiplex)
            .field("functions", &self.functions.len())
            .finish()
    }
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PlatformBuilder {
    /// Starts a builder with the paper's defaults (200 ms window,
    /// multiplexer on).
    pub fn new() -> Self {
        PlatformBuilder {
            window: Duration::from_millis(200),
            multiplex: true,
            cold_start_delay: Duration::from_millis(25),
            store: ObjectStore::new(),
            functions: Vec::new(),
        }
    }

    /// Sets the dispatch window.
    pub fn window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Enables or disables the Resource Multiplexer.
    pub fn multiplex(mut self, on: bool) -> Self {
        self.multiplex = on;
        self
    }

    /// Sets the synthetic cold-start delay paid when a fresh container must
    /// be created.
    pub fn cold_start_delay(mut self, delay: Duration) -> Self {
        self.cold_start_delay = delay;
        self
    }

    /// Supplies the object store backing the containers' storage SDKs.
    pub fn store(mut self, store: ObjectStore) -> Self {
        self.store = store;
        self
    }

    /// Registers a function body under `name`.
    pub fn register(
        mut self,
        name: &str,
        handler: impl Fn(&InvocationEnv<'_>) + Send + Sync + 'static,
    ) -> Self {
        self.functions.push((name.to_owned(), Arc::new(handler)));
        self
    }

    /// Starts the dispatcher and returns the running platform.
    pub fn start(self) -> FaasBatchPlatform {
        let (tx, rx) = channel::unbounded();
        let stats = Arc::new(PlatformStats::default());
        let names: Vec<String> = self.functions.iter().map(|(n, _)| n.clone()).collect();
        let dispatcher = Dispatcher {
            rx,
            window: self.window,
            multiplex: self.multiplex,
            cold_start_delay: self.cold_start_delay,
            store: self.store,
            handlers: self.functions.into_iter().map(|(_, h)| h).collect(),
            warm: Arc::new(Mutex::new(HashMap::new())),
            stats: stats.clone(),
            next_container: 0,
            group_threads: Vec::new(),
        };
        let handle = std::thread::Builder::new()
            .name("faasbatch-dispatcher".to_owned())
            .spawn(move || dispatcher.run())
            .expect("spawn dispatcher");
        FaasBatchPlatform {
            tx: Some(tx),
            dispatcher: Some(handle),
            names,
            stats,
        }
    }
}

struct Dispatcher {
    rx: Receiver<Message>,
    window: Duration,
    multiplex: bool,
    cold_start_delay: Duration,
    store: ObjectStore,
    handlers: Vec<Handler>,
    warm: Arc<Mutex<HashMap<usize, Vec<Arc<ContainerEnv>>>>>,
    stats: Arc<PlatformStats>,
    next_container: u64,
    group_threads: Vec<JoinHandle<()>>,
}

impl Dispatcher {
    fn run(mut self) {
        let mut open = true;
        while open {
            // Invoke-Mapper phase: buffer one window's worth of requests.
            let deadline = Instant::now() + self.window;
            let mut flushes: Vec<Sender<()>> = Vec::new();
            let mut groups: HashMap<usize, Vec<Request>> = HashMap::new();
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(Message::Invoke(req)) => groups.entry(req.function).or_default().push(req),
                    Ok(Message::Flush(done)) => flushes.push(done),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
            // Inline-Parallel-Producer phase: one container per group, all
            // groups in parallel, threads inside each group.
            let mut order: Vec<usize> = groups.keys().copied().collect();
            order.sort_unstable();
            for function in order {
                let batch = groups.remove(&function).expect("group exists");
                self.spawn_group(function, batch);
            }
            self.group_threads.retain(|h| !h.is_finished());
            if !flushes.is_empty() {
                // A flush acknowledges only after every in-flight group ran.
                for h in self.group_threads.drain(..) {
                    let _ = h.join();
                }
                for done in flushes {
                    let _ = done.send(());
                }
            }
        }
        for h in self.group_threads.drain(..) {
            let _ = h.join();
        }
    }

    fn spawn_group(&mut self, function: usize, batch: Vec<Request>) {
        let handler = self.handlers[function].clone();
        let warm = self.warm.clone();
        let stats = self.stats.clone();
        let (env, cold) = self.acquire_container(function);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        if cold {
            self.stats
                .containers_created
                .fetch_add(1, Ordering::Relaxed);
        }
        let cold_delay = self.cold_start_delay;
        let batch_size = batch.len() as u64;
        let handle = std::thread::Builder::new()
            .name(format!("faasbatch-ctr-{}", env.id()))
            .spawn(move || {
                if cold {
                    std::thread::sleep(cold_delay);
                }
                let sdk_creations_before = env.sdk.total_creations() as u64;
                std::thread::scope(|scope| {
                    for req in batch {
                        let env = &env;
                        let handler = handler.clone();
                        scope.spawn(move || {
                            let started = Instant::now();
                            let ctx = InvocationEnv {
                                payload: req.payload.clone(),
                                container: env,
                            };
                            // A user function crashing must not take down the
                            // container or starve its batch siblings.
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handler(&ctx)
                                }));
                            let outcome = InvokeOutcome {
                                queued: started.duration_since(req.enqueued),
                                execution: started.elapsed(),
                                cold,
                                panicked: result.is_err(),
                            };
                            let _ = req.reply.send(outcome);
                        });
                    }
                });
                let created = env.sdk.total_creations() as u64 - sdk_creations_before;
                stats.clients_created.fetch_add(created, Ordering::Relaxed);
                stats.invocations.fetch_add(batch_size, Ordering::Relaxed);
                // Return the container to the warm pool.
                warm.lock().entry(function).or_default().push(env);
            })
            .expect("spawn group thread");
        self.group_threads.push(handle);
    }

    fn acquire_container(&mut self, function: usize) -> (Arc<ContainerEnv>, bool) {
        if let Some(env) = self.warm.lock().get_mut(&function).and_then(Vec::pop) {
            return (env, false);
        }
        let id = self.next_container;
        self.next_container += 1;
        (
            Arc::new(ContainerEnv {
                id,
                multiplexer: ResourceMultiplexer::new(),
                sdk: StorageSdk::new(self.store.clone()),
                multiplex: self.multiplex,
            }),
            true,
        )
    }
}

/// The running live platform. Dropping it drains in-flight work and joins
/// the dispatcher.
#[derive(Debug)]
pub struct FaasBatchPlatform {
    tx: Option<Sender<Message>>,
    dispatcher: Option<JoinHandle<()>>,
    names: Vec<String>,
    stats: Arc<PlatformStats>,
}

impl FaasBatchPlatform {
    /// Submits an invocation of `function` with `payload`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownFunction`] if the name is not registered;
    /// [`PlatformError::ShuttingDown`] if the platform is stopping.
    pub fn invoke(&self, function: &str, payload: Bytes) -> Result<InvokeTicket, PlatformError> {
        let idx = self
            .names
            .iter()
            .position(|n| n == function)
            .ok_or_else(|| PlatformError::UnknownFunction(function.to_owned()))?;
        let (reply, rx) = channel::bounded(1);
        let tx = self.tx.as_ref().ok_or(PlatformError::ShuttingDown)?;
        tx.send(Message::Invoke(Request {
            function: idx,
            payload,
            enqueued: Instant::now(),
            reply,
        }))
        .map_err(|_| PlatformError::ShuttingDown)?;
        Ok(InvokeTicket { rx })
    }

    /// Blocks until every invocation submitted so far has completed.
    ///
    /// # Errors
    ///
    /// [`PlatformError::ShuttingDown`] if the platform is stopping.
    pub fn drain(&self) -> Result<(), PlatformError> {
        let (done, rx) = channel::bounded(1);
        let tx = self.tx.as_ref().ok_or(PlatformError::ShuttingDown)?;
        tx.send(Message::Flush(done))
            .map_err(|_| PlatformError::ShuttingDown)?;
        rx.recv().map_err(|_| PlatformError::ShuttingDown)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &PlatformStats {
        &self.stats
    }

    /// Registered function names, in registration order.
    pub fn functions(&self) -> &[String] {
        &self.names
    }
}

impl Drop for FaasBatchPlatform {
    fn drop(&mut self) {
        // Closing the channel lets the dispatcher drain and exit.
        self.tx.take();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn fast_platform(multiplex: bool) -> (FaasBatchPlatform, Arc<AtomicUsize>) {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let store = ObjectStore::new();
        store.create_bucket("b").unwrap();
        let platform = PlatformBuilder::new()
            .window(Duration::from_millis(10))
            .multiplex(multiplex)
            .cold_start_delay(Duration::from_millis(1))
            .store(store)
            .register("count", move |_env| {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .register("io", |env| {
                let client = env.container.storage_client(&ClientConfig::for_bucket("b"));
                client.put("k", Bytes::from_static(b"v")).unwrap();
            })
            .start();
        (platform, counter)
    }

    #[test]
    fn invoke_runs_handler_and_reports_timing() {
        let (platform, counter) = fast_platform(true);
        let ticket = platform.invoke("count", Bytes::new()).unwrap();
        let outcome = ticket.wait();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert!(outcome.cold, "first invocation is cold");
        assert!(outcome.total() >= outcome.execution);
    }

    #[test]
    fn unknown_function_is_rejected() {
        let (platform, _) = fast_platform(true);
        assert_eq!(
            platform.invoke("nope", Bytes::new()).unwrap_err(),
            PlatformError::UnknownFunction("nope".into())
        );
    }

    #[test]
    fn concurrent_invocations_batch_into_one_container() {
        let (platform, counter) = fast_platform(true);
        let tickets: Vec<_> = (0..16)
            .map(|_| platform.invoke("count", Bytes::new()).unwrap())
            .collect();
        for t in tickets {
            t.wait();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        // All 16 arrived within one window: at most a couple of containers
        // even under scheduling jitter.
        let containers = platform.stats().containers_created.load(Ordering::Relaxed);
        assert!(containers <= 3, "created {containers} containers");
    }

    #[test]
    fn warm_reuse_after_first_batch() {
        let (platform, _) = fast_platform(true);
        platform.invoke("count", Bytes::new()).unwrap().wait();
        let second = platform.invoke("count", Bytes::new()).unwrap().wait();
        assert!(!second.cold, "second invocation should be warm");
    }

    #[test]
    fn container_env_exports_mux_trace() {
        use faasbatch_metrics::events::EventKind;
        let store = ObjectStore::new();
        store.create_bucket("b").unwrap();
        let env = ContainerEnv {
            id: 3,
            multiplexer: ResourceMultiplexer::new(),
            sdk: StorageSdk::new(store),
            multiplex: true,
        };
        let cfg = ClientConfig::for_bucket("b");
        env.storage_client(&cfg);
        env.storage_client(&cfg);
        let trace = env.take_mux_trace(SimTime::from_secs(1));
        assert_eq!(trace.len(), 2);
        assert!(
            matches!(trace[0].kind, EventKind::ClientCacheMiss { container, .. }
            if container == ContainerId::new(3))
        );
        assert!(matches!(trace[1].kind, EventKind::ClientCacheHit { .. }));
        assert!(env.take_mux_trace(SimTime::from_secs(2)).is_empty());
    }

    #[test]
    fn multiplexer_limits_client_creations() {
        let (platform, _) = fast_platform(true);
        let tickets: Vec<_> = (0..12)
            .map(|_| platform.invoke("io", Bytes::new()).unwrap())
            .collect();
        for t in tickets {
            t.wait();
        }
        platform.drain().unwrap();
        let created = platform.stats().clients_created.load(Ordering::Relaxed);
        let containers = platform.stats().containers_created.load(Ordering::Relaxed);
        assert!(
            created <= containers,
            "multiplexed: {created} clients for {containers} containers"
        );
    }

    #[test]
    fn without_multiplexer_every_invocation_creates() {
        let (platform, _) = fast_platform(false);
        let tickets: Vec<_> = (0..8)
            .map(|_| platform.invoke("io", Bytes::new()).unwrap())
            .collect();
        for t in tickets {
            t.wait();
        }
        platform.drain().unwrap();
        assert_eq!(platform.stats().clients_created.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn outcome_summary_aggregates() {
        let mk = |q: u64, e: u64, cold: bool, panicked: bool| InvokeOutcome {
            queued: Duration::from_millis(q),
            execution: Duration::from_millis(e),
            cold,
            panicked,
        };
        let s = OutcomeSummary::from_outcomes(&[mk(10, 20, true, false), mk(30, 40, false, true)]);
        assert_eq!(s.count, 2);
        assert_eq!(s.cold, 1);
        assert_eq!(s.panicked, 1);
        assert_eq!(s.mean_queued, Duration::from_millis(20));
        assert_eq!(s.mean_execution, Duration::from_millis(30));
        assert_eq!(s.max_total, Duration::from_millis(70));
        assert_eq!(
            OutcomeSummary::from_outcomes(&[]),
            OutcomeSummary::default()
        );
    }

    #[test]
    fn panicking_handler_is_contained() {
        let store = ObjectStore::new();
        store.create_bucket("b").unwrap();
        let platform = PlatformBuilder::new()
            .window(Duration::from_millis(10))
            .store(store)
            .register("boom", |env| {
                if env.payload.is_empty() {
                    panic!("user function crashed");
                }
            })
            .start();
        // Crash and success share one batch; both must report back.
        let crash = platform.invoke("boom", Bytes::new()).unwrap();
        let ok = platform.invoke("boom", Bytes::from_static(b"x")).unwrap();
        assert!(crash.wait().panicked);
        assert!(!ok.wait().panicked);
        // The container survives for the next invocation.
        let again = platform
            .invoke("boom", Bytes::from_static(b"y"))
            .unwrap()
            .wait();
        assert!(!again.panicked);
    }

    #[test]
    fn drop_drains_cleanly() {
        let (platform, counter) = fast_platform(true);
        for _ in 0..4 {
            let _ = platform.invoke("count", Bytes::new()).unwrap();
        }
        drop(platform);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
