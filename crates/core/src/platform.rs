//! A live (real-clock) FaaSBatch platform.
//!
//! This is the runnable counterpart of the simulated policy: a front door
//! that accepts invocations, a dispatcher that batches them per function
//! across a wall-clock window (Invoke Mapper), warm container reuse, group
//! expansion on the shared work-stealing executor (Inline-Parallel
//! Producer), and a per-container [`ResourceMultiplexer`] for storage
//! clients. The examples and the motivation benchmarks (Fig. 1/4/5) run on
//! this.
//!
//! Each dispatched batch becomes one executor **task group**
//! ([`faasbatch_exec::GroupJob`]s behind a completion barrier), so one
//! process multiplexes every in-flight batch over a fixed worker pool
//! instead of spawning a thread per invocation; cold-start delays and
//! warm-pool keep-alive eviction ride the executor's timer wheel rather
//! than sleeping threads. The original thread-per-job backend is retained
//! ([`LiveBackend::ThreadPerJob`]) as a comparison baseline.
//!
//! With a [`LiveTraceRecorder`] attached ([`PlatformBuilder::trace`]), every
//! run emits the same typed [`SimEvent`] stream as the simulator — arrivals,
//! dispatch decisions, cold-start spans, container state changes, exec
//! spans, completions — so the auditor and `faasbatch trace --analyze` work
//! on live runs (DESIGN.md §14).

use crate::multiplexer::{mux_trace_events, MultiplexerStats, ResourceMultiplexer};
use crate::telemetry::PlatformTelemetry;
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use faasbatch_container::container::ContainerState;
use faasbatch_container::ids::{ContainerId, FunctionId, InvocationId};
use faasbatch_container::live::LiveBackend;
use faasbatch_exec::{global_executor, Executor, GroupJob, GroupReport};
use faasbatch_metrics::events::{EventKind, SimEvent, TaskKind};
use faasbatch_metrics::live::LiveTraceRecorder;
use faasbatch_simcore::time::{SimDuration, SimTime};
use faasbatch_storage::client::{ClientConfig, StorageClient, StorageSdk};
use faasbatch_storage::object_store::ObjectStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors returned by the live platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The invoked function name is not registered.
    UnknownFunction(String),
    /// The platform is shutting down and cannot accept work.
    ShuttingDown,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            PlatformError::ShuttingDown => write!(f, "platform is shutting down"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Per-invocation outcome reported back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvokeOutcome {
    /// Time spent waiting for the dispatch window and a container.
    pub queued: Duration,
    /// Time the handler body ran.
    pub execution: Duration,
    /// Whether this batch had to create a fresh container via a full cold
    /// boot.
    pub cold: bool,
    /// Whether this batch's container was restored from a captured
    /// snapshot template instead of booting cold (mutually exclusive with
    /// `cold`; see [`PlatformBuilder::snapshots`]).
    pub restored: bool,
    /// Whether the handler panicked (the platform contains the panic; the
    /// rest of the batch and the container survive).
    pub panicked: bool,
}

impl InvokeOutcome {
    /// Queued + execution.
    pub fn total(&self) -> Duration {
        self.queued + self.execution
    }
}

/// Aggregate view over a set of live outcomes (one burst, one benchmark
/// run, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeSummary {
    /// Outcomes aggregated.
    pub count: usize,
    /// Cold invocations.
    pub cold: usize,
    /// Snapshot-restored invocations.
    pub restored: usize,
    /// Panicked invocations.
    pub panicked: usize,
    /// Mean queued time.
    pub mean_queued: Duration,
    /// Mean execution time.
    pub mean_execution: Duration,
    /// Worst end-to-end time.
    pub max_total: Duration,
}

impl OutcomeSummary {
    /// Summarises `outcomes` (all zeroes when empty).
    pub fn from_outcomes(outcomes: &[InvokeOutcome]) -> OutcomeSummary {
        if outcomes.is_empty() {
            return OutcomeSummary::default();
        }
        let n = outcomes.len() as u32;
        OutcomeSummary {
            count: outcomes.len(),
            cold: outcomes.iter().filter(|o| o.cold).count(),
            restored: outcomes.iter().filter(|o| o.restored).count(),
            panicked: outcomes.iter().filter(|o| o.panicked).count(),
            mean_queued: outcomes.iter().map(|o| o.queued).sum::<Duration>() / n,
            mean_execution: outcomes.iter().map(|o| o.execution).sum::<Duration>() / n,
            max_total: outcomes
                .iter()
                .map(InvokeOutcome::total)
                .max()
                .unwrap_or_default(),
        }
    }
}

/// Handle to a pending invocation.
#[derive(Debug)]
pub struct InvokeTicket {
    rx: Receiver<InvokeOutcome>,
}

impl InvokeTicket {
    /// Blocks until the invocation completes.
    ///
    /// # Panics
    ///
    /// Panics if the platform was torn down before the invocation ran
    /// (cannot happen through the public API, which drains on shutdown).
    pub fn wait(self) -> InvokeOutcome {
        self.rx.recv().expect("invocation dropped by platform")
    }
}

/// The services visible to a handler inside its container.
pub struct ContainerEnv {
    id: u64,
    multiplexer: ResourceMultiplexer<StorageClient>,
    sdk: StorageSdk,
    multiplex: bool,
}

impl fmt::Debug for ContainerEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContainerEnv")
            .field("id", &self.id)
            .finish()
    }
}

impl ContainerEnv {
    /// This container's id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Obtains a storage client for `config` — through the Resource
    /// Multiplexer when it is enabled (one creation per distinct config per
    /// container), or by building a fresh client every time (the baseline
    /// behaviour the paper measures in Fig. 4/5).
    pub fn storage_client(&self, config: &ClientConfig) -> Arc<StorageClient> {
        if self.multiplex {
            self.multiplexer
                .get_or_create(config, || self.sdk.connect(config))
        } else {
            Arc::new(self.sdk.connect(config))
        }
    }

    /// Hit/miss counters of this container's multiplexer.
    pub fn multiplexer_stats(&self) -> MultiplexerStats {
        self.multiplexer.stats()
    }

    /// Drains this container's multiplexer journal as typed trace events
    /// stamped at `at` — live containers run on the wall clock, so the
    /// caller chooses the simulated timestamp under which the history joins
    /// a [`SimEvent`] stream (DESIGN.md §11).
    pub fn take_mux_trace(&self, at: SimTime) -> Vec<SimEvent> {
        let events = self.multiplexer.take_events();
        mux_trace_events(ContainerId::new(self.id), at, &events)
    }
}

/// What a handler sees for one invocation.
pub struct InvocationEnv<'a> {
    /// Caller-supplied payload.
    pub payload: Bytes,
    /// The container's shared services.
    pub container: &'a ContainerEnv,
}

/// A registered function body.
pub type Handler = Arc<dyn Fn(&InvocationEnv<'_>) + Send + Sync>;

struct Request {
    invocation: InvocationId,
    function: usize,
    payload: Bytes,
    enqueued: Instant,
    reply: Sender<InvokeOutcome>,
}

/// Runs after a remotely submitted group fully completes, with the batch
/// size (see [`FaasBatchPlatform::submit_group`]).
pub type GroupDone = Box<dyn FnOnce(usize) + Send + 'static>;

/// One member of a pre-formed batch handed to
/// [`FaasBatchPlatform::submit_group`].
///
/// The caller (the gateway) mints the invocation id from a shared
/// [`PlatformIds`] and keeps the [`InvokeTicket`]; the job carries the reply
/// side. `queued` time in the eventual [`InvokeOutcome`] is measured from
/// the moment this job was created.
pub struct RemoteJob {
    invocation: InvocationId,
    payload: Bytes,
    enqueued: Instant,
    reply: Sender<InvokeOutcome>,
}

impl fmt::Debug for RemoteJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteJob")
            .field("invocation", &self.invocation)
            .finish()
    }
}

impl RemoteJob {
    /// Creates a job plus the ticket its caller waits on.
    pub fn new(invocation: InvocationId, payload: Bytes) -> (RemoteJob, InvokeTicket) {
        let (reply, rx) = channel::bounded(1);
        (
            RemoteJob {
                invocation,
                payload,
                enqueued: Instant::now(),
                reply,
            },
            InvokeTicket { rx },
        )
    }

    /// The invocation this job carries.
    pub fn invocation(&self) -> InvocationId {
        self.invocation
    }

    fn into_request(self, function: usize) -> Request {
        Request {
            invocation: self.invocation,
            function,
            payload: self.payload,
            enqueued: self.enqueued,
            reply: self.reply,
        }
    }
}

enum Message {
    Invoke(Request),
    Group {
        function: usize,
        members: Vec<RemoteJob>,
        on_done: Option<GroupDone>,
    },
    Flush(Sender<()>),
}

/// Shared id counters for invocations, batches, and containers.
///
/// A platform running alone owns a private set; a gateway running N worker
/// platforms against one [`LiveTraceRecorder`] passes one `Arc<PlatformIds>`
/// to every builder ([`PlatformBuilder::ids`]) so ids stay globally unique
/// in the merged event stream.
#[derive(Debug, Default)]
pub struct PlatformIds {
    invocation: AtomicU64,
    batch: AtomicU64,
    container: AtomicU64,
}

impl PlatformIds {
    /// Fresh counters starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints the next invocation id (used by the gateway front door, which
    /// emits `Arrival` before the invocation reaches any worker platform).
    pub fn next_invocation(&self) -> InvocationId {
        InvocationId::new(self.invocation.fetch_add(1, Ordering::Relaxed))
    }

    fn next_batch(&self) -> u64 {
        self.batch.fetch_add(1, Ordering::Relaxed)
    }

    fn next_container(&self) -> u64 {
        self.container.fetch_add(1, Ordering::Relaxed)
    }
}

/// Aggregate counters of a live platform.
#[derive(Debug, Default)]
pub struct PlatformStats {
    /// Containers created (cold starts).
    pub containers_created: AtomicU64,
    /// Containers started by restoring a snapshot template instead of a
    /// full cold boot ([`PlatformBuilder::snapshots`]).
    pub containers_restored: AtomicU64,
    /// Warm containers evicted by keep-alive expiry.
    pub containers_evicted: AtomicU64,
    /// Batches dispatched.
    pub batches: AtomicU64,
    /// Invocations completed.
    pub invocations: AtomicU64,
    /// Storage clients actually built across all containers.
    pub clients_created: AtomicU64,
}

/// A warm container parked in the keep-alive pool. The generation stamp
/// lets the eviction timer recognise whether "its" entry is still the one
/// sitting in the pool (reuse pops the entry; a later return gets a fresh
/// generation, so a stale timer never evicts a just-returned container).
struct WarmEntry {
    env: Arc<ContainerEnv>,
    generation: u64,
}

type WarmPools = Arc<Mutex<HashMap<usize, Vec<WarmEntry>>>>;

/// Counts in-flight batch groups so `drain`/shutdown can wait for work that
/// no longer lives on joinable threads (executor groups, cold-start timers).
#[derive(Default)]
struct PendingGroups {
    count: std::sync::Mutex<usize>,
    cvar: std::sync::Condvar,
}

impl PendingGroups {
    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.count
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn enter(&self) {
        *self.lock() += 1;
    }

    fn exit(&self) {
        let mut count = self.lock();
        *count = count.saturating_sub(1);
        if *count == 0 {
            self.cvar.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut count = self.lock();
        while *count > 0 {
            count = self
                .cvar
                .wait(count)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Builder for [`FaasBatchPlatform`].
pub struct PlatformBuilder {
    window: Duration,
    multiplex: bool,
    cold_start_delay: Duration,
    snapshots: usize,
    restore_delay: Duration,
    backend: LiveBackend,
    executor: Option<Arc<Executor>>,
    recorder: Option<LiveTraceRecorder>,
    telemetry: Option<Arc<PlatformTelemetry>>,
    keep_alive: Option<Duration>,
    store: ObjectStore,
    ids: Option<Arc<PlatformIds>>,
    functions: Vec<(String, Handler)>,
}

impl fmt::Debug for PlatformBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlatformBuilder")
            .field("window", &self.window)
            .field("multiplex", &self.multiplex)
            .field("backend", &self.backend)
            .field("functions", &self.functions.len())
            .finish()
    }
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PlatformBuilder {
    /// Starts a builder with the paper's defaults (200 ms window,
    /// multiplexer on, executor backend).
    pub fn new() -> Self {
        PlatformBuilder {
            window: Duration::from_millis(200),
            multiplex: true,
            cold_start_delay: Duration::from_millis(25),
            snapshots: 0,
            restore_delay: Duration::from_millis(2),
            backend: LiveBackend::default(),
            executor: None,
            recorder: None,
            telemetry: None,
            keep_alive: None,
            store: ObjectStore::new(),
            ids: None,
            functions: Vec::new(),
        }
    }

    /// Sets the dispatch window.
    pub fn window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Enables or disables the Resource Multiplexer.
    pub fn multiplex(mut self, on: bool) -> Self {
        self.multiplex = on;
        self
    }

    /// Sets the synthetic cold-start delay paid when a fresh container must
    /// be created.
    pub fn cold_start_delay(mut self, delay: Duration) -> Self {
        self.cold_start_delay = delay;
        self
    }

    /// Enables the snapshot-restore start tier with at most `capacity`
    /// templates (0 = disabled, the default).
    ///
    /// The live approximation of snapshot restore: the first cold boot of a
    /// function captures a pre-initialized template; when the warm pool
    /// later misses but a template exists, a fresh container is cloned from
    /// it and becomes ready after the (short) restore delay instead of the
    /// full cold-start delay. Templates are bounded at `capacity` across
    /// all functions, evicting least-recently-used.
    pub fn snapshots(mut self, capacity: usize) -> Self {
        self.snapshots = capacity;
        self
    }

    /// Sets the synthetic restore delay paid when a container starts from a
    /// snapshot template (default 2 ms; compare the 25 ms cold default).
    pub fn restore_delay(mut self, delay: Duration) -> Self {
        self.restore_delay = delay;
        self
    }

    /// Selects the batch-expansion backend (default: the work-stealing
    /// executor; [`LiveBackend::ThreadPerJob`] is the original
    /// thread-per-invocation baseline).
    pub fn backend(mut self, backend: LiveBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Runs batches on a specific executor instance instead of the
    /// process-wide [`global_executor`] — lets tests pick a seeded,
    /// fixed-size pool.
    pub fn executor(mut self, executor: Arc<Executor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Attaches a wall-clock trace recorder; the platform then emits the
    /// full typed [`SimEvent`] stream (arrivals, dispatch decisions,
    /// cold-start spans, container state changes, exec spans, completions).
    pub fn trace(mut self, recorder: LiveTraceRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches live metrics (DESIGN.md §18): warm/cold dispatch counters,
    /// batch-size and per-function end-to-end latency histograms, and the
    /// in-flight gauge, all recorded straight into the handle's
    /// [`MetricRegistry`](faasbatch_metrics::MetricRegistry).
    pub fn telemetry(mut self, telemetry: Arc<PlatformTelemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Enables warm-pool keep-alive: a container idle for `ttl` after a
    /// batch is evicted by a timer-wheel callback (off by default, so pools
    /// grow monotonically as before).
    pub fn keep_alive(mut self, ttl: Duration) -> Self {
        self.keep_alive = Some(ttl);
        self
    }

    /// Supplies the object store backing the containers' storage SDKs.
    pub fn store(mut self, store: ObjectStore) -> Self {
        self.store = store;
        self
    }

    /// Shares id counters with other platforms (default: a private set).
    ///
    /// Required whenever several platforms feed one trace recorder —
    /// otherwise their dense per-platform batch/container/invocation
    /// counters collide in the merged stream.
    pub fn ids(mut self, ids: Arc<PlatformIds>) -> Self {
        self.ids = Some(ids);
        self
    }

    /// Registers a function body under `name`.
    pub fn register(
        mut self,
        name: &str,
        handler: impl Fn(&InvocationEnv<'_>) + Send + Sync + 'static,
    ) -> Self {
        self.functions.push((name.to_owned(), Arc::new(handler)));
        self
    }

    /// Starts the dispatcher and returns the running platform.
    pub fn start(self) -> FaasBatchPlatform {
        let (tx, rx) = channel::unbounded();
        let stats = Arc::new(PlatformStats::default());
        let names: Vec<String> = self.functions.iter().map(|(n, _)| n.clone()).collect();
        let recorder = self.recorder;
        let telemetry = self.telemetry;
        if let Some(tel) = &telemetry {
            // Pre-register every function's latency family so exposition
            // order is registration order, not first-completion order.
            for function in 0..names.len() {
                tel.ensure_function(function);
            }
        }
        let ids = self.ids.unwrap_or_default();
        let dispatcher = Dispatcher {
            rx,
            window: self.window,
            multiplex: self.multiplex,
            cold_start_delay: self.cold_start_delay,
            snapshots: self.snapshots,
            restore_delay: self.restore_delay,
            templates: HashMap::new(),
            template_clock: 0,
            backend: self.backend,
            executor: self.executor.unwrap_or_else(global_executor),
            recorder: recorder.clone(),
            telemetry: telemetry.clone(),
            keep_alive: self.keep_alive,
            store: self.store,
            handlers: self.functions.into_iter().map(|(_, h)| h).collect(),
            warm: Arc::new(Mutex::new(HashMap::new())),
            warm_gen: Arc::new(AtomicU64::new(0)),
            stats: stats.clone(),
            ids: Arc::clone(&ids),
            pending: Arc::new(PendingGroups::default()),
        };
        let handle = std::thread::Builder::new()
            .name("faasbatch-dispatcher".to_owned())
            .spawn(move || dispatcher.run())
            .expect("spawn dispatcher");
        FaasBatchPlatform {
            tx: Some(tx),
            dispatcher: Some(handle),
            names,
            stats,
            recorder,
            telemetry,
            ids,
        }
    }
}

/// How a dispatched batch obtained its container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StartTier {
    /// Pooled warm container, ready immediately.
    Warm,
    /// Fresh container cloned from a captured snapshot template; ready
    /// after the restore delay.
    Restored,
    /// Fresh container via a full cold boot; ready after the cold-start
    /// delay.
    Cold,
}

struct Dispatcher {
    rx: Receiver<Message>,
    window: Duration,
    multiplex: bool,
    cold_start_delay: Duration,
    snapshots: usize,
    restore_delay: Duration,
    /// Snapshot templates: function → last-use stamp (LRU), bounded at
    /// `snapshots` entries. Only touched by the dispatcher thread.
    templates: HashMap<usize, u64>,
    template_clock: u64,
    backend: LiveBackend,
    executor: Arc<Executor>,
    recorder: Option<LiveTraceRecorder>,
    telemetry: Option<Arc<PlatformTelemetry>>,
    keep_alive: Option<Duration>,
    store: ObjectStore,
    handlers: Vec<Handler>,
    warm: WarmPools,
    warm_gen: Arc<AtomicU64>,
    stats: Arc<PlatformStats>,
    ids: Arc<PlatformIds>,
    pending: Arc<PendingGroups>,
}

impl Dispatcher {
    fn run(mut self) {
        let mut open = true;
        while open {
            // Invoke-Mapper phase: buffer one window's worth of requests.
            let deadline = Instant::now() + self.window;
            let mut flushes: Vec<Sender<()>> = Vec::new();
            let mut groups: HashMap<usize, Vec<Request>> = HashMap::new();
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let message = self.rx.recv_timeout(deadline - now);
                match message {
                    Ok(Message::Invoke(req)) => groups.entry(req.function).or_default().push(req),
                    // A remotely built group was already windowed and routed
                    // by the gateway; dispatch it immediately as a unit —
                    // re-windowing here could merge or split it.
                    Ok(Message::Group {
                        function,
                        members,
                        on_done,
                    }) => {
                        let batch = members
                            .into_iter()
                            .map(|job| job.into_request(function))
                            .collect();
                        self.spawn_group(function, batch, on_done);
                    }
                    Ok(Message::Flush(done)) => flushes.push(done),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
            // Inline-Parallel-Producer phase: one container per group, every
            // group expanded concurrently on the backend.
            let mut order: Vec<usize> = groups.keys().copied().collect();
            order.sort_unstable();
            for function in order {
                let batch = groups.remove(&function).expect("group exists");
                self.spawn_group(function, batch, None);
            }
            if !flushes.is_empty() {
                // A flush acknowledges only after every in-flight group —
                // including cold ones parked on the timer wheel — resolved.
                self.pending.wait_idle();
                for done in flushes {
                    let _ = done.send(());
                }
            }
        }
        self.pending.wait_idle();
    }

    fn spawn_group(&mut self, function: usize, batch: Vec<Request>, on_done: Option<GroupDone>) {
        let (env, tier) = self.acquire_container(function);
        let cold = tier == StartTier::Cold;
        let restored = tier == StartTier::Restored;
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        if cold {
            self.stats
                .containers_created
                .fetch_add(1, Ordering::Relaxed);
        }
        if restored {
            self.stats
                .containers_restored
                .fetch_add(1, Ordering::Relaxed);
        }
        if let Some(tel) = &self.telemetry {
            tel.on_batch(batch.len(), cold, restored);
        }
        let batch_id = self.ids.next_batch();
        let container = ContainerId::new(env.id());
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::DispatchDecision {
                batch: batch_id,
                function: FunctionId::new(function as u32),
                container,
                cold,
                restored,
                barrier: false,
                members: batch.iter().map(|r| r.invocation).collect(),
            });
            rec.record(EventKind::TaskStart {
                task: TaskKind::Decision { batch: batch_id },
            });
            rec.record(EventKind::TaskFinish {
                task: TaskKind::Decision { batch: batch_id },
            });
            if cold {
                rec.record(EventKind::ContainerStateChange {
                    container,
                    from: None,
                    to: ContainerState::Provisioning,
                });
                rec.record(EventKind::ColdStartBegin {
                    container,
                    batch: Some(batch_id),
                });
            } else if restored {
                rec.record(EventKind::ContainerStateChange {
                    container,
                    from: None,
                    to: ContainerState::Provisioning,
                });
                rec.record(EventKind::RestoreBegin {
                    container,
                    batch: Some(batch_id),
                });
            }
        }
        self.pending.enter();
        let ctx = GroupCtx {
            handler: self.handlers[function].clone(),
            env,
            requests: batch,
            function,
            batch: batch_id,
            cold,
            restored,
            recorder: self.recorder.clone(),
            telemetry: self.telemetry.clone(),
            warm: Arc::clone(&self.warm),
            warm_gen: Arc::clone(&self.warm_gen),
            keep_alive: self.keep_alive,
            stats: Arc::clone(&self.stats),
            executor: Arc::clone(&self.executor),
            pending: Arc::clone(&self.pending),
            on_done,
        };
        match self.backend {
            LiveBackend::Executor => {
                match tier {
                    StartTier::Cold => {
                        // The cold-start delay rides the timer wheel: the
                        // ready events are emitted in the callback *before*
                        // the group is submitted, so `ColdStartEnd` strictly
                        // precedes every `ExecBegin` of the batch.
                        self.executor.schedule(self.cold_start_delay, move || {
                            ctx.mark_ready_after_cold();
                            ctx.submit();
                        });
                    }
                    StartTier::Restored => {
                        // Same shape, shorter delay: `RestoreDone` strictly
                        // precedes every `ExecBegin`.
                        self.executor.schedule(self.restore_delay, move || {
                            ctx.mark_ready_after_restore();
                            ctx.submit();
                        });
                    }
                    StartTier::Warm => {
                        ctx.mark_busy_from_warm();
                        ctx.submit();
                    }
                }
            }
            LiveBackend::ThreadPerJob => {
                let cold_delay = self.cold_start_delay;
                let restore_delay = self.restore_delay;
                std::thread::Builder::new()
                    .name(format!("faasbatch-ctr-{}", ctx.env.id()))
                    .spawn(move || {
                        match tier {
                            StartTier::Cold => {
                                std::thread::sleep(cold_delay);
                                ctx.mark_ready_after_cold();
                            }
                            StartTier::Restored => {
                                std::thread::sleep(restore_delay);
                                ctx.mark_ready_after_restore();
                            }
                            StartTier::Warm => ctx.mark_busy_from_warm(),
                        }
                        ctx.run_thread_per_job();
                    })
                    .expect("spawn group thread");
            }
        }
    }

    /// Three start tiers, mirroring the simulator's
    /// [`Cluster::acquire`](faasbatch_container::cluster::Cluster::acquire):
    /// warm-pool hit, then snapshot-template restore, then full cold boot
    /// (which captures a template for later restores when the tier is on).
    fn acquire_container(&mut self, function: usize) -> (Arc<ContainerEnv>, StartTier) {
        if let Some(entry) = self.warm.lock().get_mut(&function).and_then(Vec::pop) {
            return (entry.env, StartTier::Warm);
        }
        let tier = if self.snapshots > 0 {
            self.template_clock += 1;
            let stamp = self.template_clock;
            if let Some(last_used) = self.templates.get_mut(&function) {
                *last_used = stamp;
                StartTier::Restored
            } else {
                // Live approximation of snapshot capture: remember the
                // function at provision time (the simulator captures at
                // boot completion; the dispatcher thread has no ready
                // callback, so capture here and keep the cache
                // single-threaded).
                self.templates.insert(function, stamp);
                while self.templates.len() > self.snapshots {
                    if let Some(victim) = self
                        .templates
                        .iter()
                        .min_by_key(|(_, &t)| t)
                        .map(|(f, _)| *f)
                    {
                        self.templates.remove(&victim);
                    }
                }
                StartTier::Cold
            }
        } else {
            StartTier::Cold
        };
        let id = self.ids.next_container();
        (
            Arc::new(ContainerEnv {
                id,
                multiplexer: ResourceMultiplexer::new(),
                sdk: StorageSdk::new(self.store.clone()),
                multiplex: self.multiplex,
            }),
            tier,
        )
    }
}

/// Everything one dispatched batch needs to run to completion on either
/// backend: the members, the container, and the shared platform state the
/// finishing side updates.
struct GroupCtx {
    handler: Handler,
    env: Arc<ContainerEnv>,
    requests: Vec<Request>,
    function: usize,
    batch: u64,
    cold: bool,
    restored: bool,
    recorder: Option<LiveTraceRecorder>,
    telemetry: Option<Arc<PlatformTelemetry>>,
    warm: WarmPools,
    warm_gen: Arc<AtomicU64>,
    keep_alive: Option<Duration>,
    stats: Arc<PlatformStats>,
    executor: Arc<Executor>,
    pending: Arc<PendingGroups>,
    on_done: Option<GroupDone>,
}

impl GroupCtx {
    fn emit(&self, kind: EventKind) {
        if let Some(rec) = &self.recorder {
            rec.record(kind);
        }
    }

    fn container(&self) -> ContainerId {
        ContainerId::new(self.env.id())
    }

    /// Cold path, after the delay elapsed: the container becomes usable and
    /// immediately checks out to this batch.
    fn mark_ready_after_cold(&self) {
        let container = self.container();
        self.emit(EventKind::ColdStartEnd {
            container,
            batch: Some(self.batch),
        });
        self.emit(EventKind::ContainerStateChange {
            container,
            from: Some(ContainerState::Provisioning),
            to: ContainerState::Idle,
        });
        self.emit(EventKind::ContainerStateChange {
            container,
            from: Some(ContainerState::Idle),
            to: ContainerState::Busy,
        });
    }

    /// Restore path, after the (short) delay elapsed: the cloned template
    /// becomes usable and immediately checks out to this batch.
    fn mark_ready_after_restore(&self) {
        let container = self.container();
        self.emit(EventKind::RestoreDone {
            container,
            batch: Some(self.batch),
        });
        self.emit(EventKind::ContainerStateChange {
            container,
            from: Some(ContainerState::Provisioning),
            to: ContainerState::Idle,
        });
        self.emit(EventKind::ContainerStateChange {
            container,
            from: Some(ContainerState::Idle),
            to: ContainerState::Busy,
        });
    }

    /// Warm path: the pooled container checks out to this batch.
    fn mark_busy_from_warm(&self) {
        self.emit(EventKind::ContainerStateChange {
            container: self.container(),
            from: Some(ContainerState::Idle),
            to: ContainerState::Busy,
        });
    }

    /// Splits the batch into per-member runs plus the finishing step both
    /// backends share.
    fn into_parts(self) -> (Vec<MemberRun>, GroupFinisher) {
        let GroupCtx {
            handler,
            env,
            requests,
            function,
            batch,
            cold,
            restored,
            recorder,
            telemetry,
            warm,
            warm_gen,
            keep_alive,
            stats,
            executor,
            pending,
            on_done,
        } = self;
        let batch_size = requests.len() as u64;
        let sdk_creations_before = env.sdk.total_creations() as u64;
        let members = requests
            .into_iter()
            .enumerate()
            .map(|(index, req)| MemberRun {
                handler: handler.clone(),
                env: Arc::clone(&env),
                req,
                batch,
                member: index as u32,
                cold,
                restored,
                recorder: recorder.clone(),
                telemetry: telemetry.clone(),
            })
            .collect();
        let finisher = GroupFinisher {
            env,
            function,
            batch_size,
            sdk_creations_before,
            recorder,
            warm,
            warm_gen,
            keep_alive,
            stats,
            executor,
            pending,
            on_done,
        };
        (members, finisher)
    }

    /// Executor backend: the batch becomes one task group; the barrier's
    /// `on_complete` — run by the last finishing member on its worker —
    /// replaces the per-batch join thread.
    fn submit(self) {
        let executor = Arc::clone(&self.executor);
        let (members, finisher) = self.into_parts();
        let jobs: Vec<GroupJob> = members
            .into_iter()
            .map(|member| GroupJob::blocking(move || member.run()))
            .collect();
        executor.submit_group_with(
            jobs,
            None,
            Some(Box::new(move |_report: &GroupReport| finisher.finish())),
        );
    }

    /// Thread-per-job backend: the original scoped-thread expansion.
    fn run_thread_per_job(self) {
        let (members, finisher) = self.into_parts();
        std::thread::scope(|scope| {
            for member in members {
                scope.spawn(move || member.run());
            }
        });
        finisher.finish();
    }
}

/// One batch member: runs the handler with the panic boundary, reports the
/// outcome, and emits the member's exec/completion events.
struct MemberRun {
    handler: Handler,
    env: Arc<ContainerEnv>,
    req: Request,
    batch: u64,
    member: u32,
    cold: bool,
    restored: bool,
    recorder: Option<LiveTraceRecorder>,
    telemetry: Option<Arc<PlatformTelemetry>>,
}

impl MemberRun {
    fn run(self) {
        let started = Instant::now();
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::ExecBegin {
                batch: self.batch,
                member: self.member,
                // Live handlers have no declared intrinsic work; zero makes
                // the attribution of the observed span exact.
                work: SimDuration::ZERO,
            });
        }
        let ctx = InvocationEnv {
            payload: self.req.payload.clone(),
            container: &self.env,
        };
        // A user function crashing must not take down the container or
        // starve its batch siblings.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| (self.handler)(&ctx)));
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::ExecEnd {
                batch: self.batch,
                member: self.member,
            });
        }
        let outcome = InvokeOutcome {
            queued: started.duration_since(self.req.enqueued),
            execution: started.elapsed(),
            cold: self.cold,
            restored: self.restored,
            panicked: result.is_err(),
        };
        if let Some(tel) = &self.telemetry {
            tel.on_member_done(
                self.req.function,
                u64::try_from(outcome.total().as_micros()).unwrap_or(u64::MAX),
            );
        }
        let _ = self.req.reply.send(outcome);
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::InvocationComplete {
                invocation: self.req.invocation,
                batch: Some(self.batch),
                member: Some(self.member),
            });
        }
    }
}

/// The batch epilogue: fold client/invocation counters into the platform
/// stats, release the container back to the warm pool, and (when keep-alive
/// is on) arm the eviction timer.
struct GroupFinisher {
    env: Arc<ContainerEnv>,
    function: usize,
    batch_size: u64,
    sdk_creations_before: u64,
    recorder: Option<LiveTraceRecorder>,
    warm: WarmPools,
    warm_gen: Arc<AtomicU64>,
    keep_alive: Option<Duration>,
    stats: Arc<PlatformStats>,
    executor: Arc<Executor>,
    pending: Arc<PendingGroups>,
    on_done: Option<GroupDone>,
}

impl GroupFinisher {
    fn finish(self) {
        let created = self.env.sdk.total_creations() as u64 - self.sdk_creations_before;
        self.stats
            .clients_created
            .fetch_add(created, Ordering::Relaxed);
        self.stats
            .invocations
            .fetch_add(self.batch_size, Ordering::Relaxed);
        let container = ContainerId::new(self.env.id());
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::ContainerStateChange {
                container,
                from: Some(ContainerState::Busy),
                to: ContainerState::Idle,
            });
        }
        // Return the container to the warm pool.
        let generation = self.warm_gen.fetch_add(1, Ordering::Relaxed);
        self.warm
            .lock()
            .entry(self.function)
            .or_default()
            .push(WarmEntry {
                env: self.env,
                generation,
            });
        if let Some(ttl) = self.keep_alive {
            let warm = self.warm;
            let function = self.function;
            let stats = self.stats;
            let recorder = self.recorder;
            self.executor.schedule(ttl, move || {
                let evicted = {
                    let mut pools = warm.lock();
                    let Some(pool) = pools.get_mut(&function) else {
                        return;
                    };
                    // Evict only if the exact entry we parked is still
                    // idle; a reused-and-returned container carries a newer
                    // generation and keeps its own timer.
                    let Some(pos) = pool.iter().position(|e| e.generation == generation) else {
                        return;
                    };
                    pool.remove(pos)
                };
                stats.containers_evicted.fetch_add(1, Ordering::Relaxed);
                if let Some(rec) = &recorder {
                    rec.record(EventKind::ContainerStateChange {
                        container: ContainerId::new(evicted.env.id()),
                        from: Some(ContainerState::Idle),
                        to: ContainerState::Terminated,
                    });
                }
            });
        }
        if let Some(on_done) = self.on_done {
            on_done(self.batch_size as usize);
        }
        self.pending.exit();
    }
}

/// The running live platform. Dropping it drains in-flight work and joins
/// the dispatcher.
#[derive(Debug)]
pub struct FaasBatchPlatform {
    tx: Option<Sender<Message>>,
    dispatcher: Option<JoinHandle<()>>,
    names: Vec<String>,
    stats: Arc<PlatformStats>,
    recorder: Option<LiveTraceRecorder>,
    telemetry: Option<Arc<PlatformTelemetry>>,
    ids: Arc<PlatformIds>,
}

impl FaasBatchPlatform {
    /// Submits an invocation of `function` with `payload`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownFunction`] if the name is not registered;
    /// [`PlatformError::ShuttingDown`] if the platform is stopping.
    pub fn invoke(&self, function: &str, payload: Bytes) -> Result<InvokeTicket, PlatformError> {
        let idx = self
            .names
            .iter()
            .position(|n| n == function)
            .ok_or_else(|| PlatformError::UnknownFunction(function.to_owned()))?;
        let (reply, rx) = channel::bounded(1);
        let tx = self.tx.as_ref().ok_or(PlatformError::ShuttingDown)?;
        let invocation = self.ids.next_invocation();
        if let Some(rec) = &self.recorder {
            rec.record(EventKind::Arrival {
                invocation,
                function: FunctionId::new(idx as u32),
            });
        }
        if let Some(tel) = &self.telemetry {
            tel.in_flight.add(1);
        }
        let sent = tx.send(Message::Invoke(Request {
            invocation,
            function: idx,
            payload,
            enqueued: Instant::now(),
            reply,
        }));
        if sent.is_err() {
            if let Some(tel) = &self.telemetry {
                tel.in_flight.sub(1);
            }
            return Err(PlatformError::ShuttingDown);
        }
        Ok(InvokeTicket { rx })
    }

    /// Submits a pre-formed batch of `function` (a registry index) for
    /// immediate dispatch as **one** batch, bypassing this platform's own
    /// dispatch window.
    ///
    /// This is the gateway's entry point: the caller already collected a
    /// dispatch window and routed the whole group here, so the platform
    /// must not re-window (which could merge or split it). The caller is
    /// responsible for emitting the members' `Arrival` events, minting
    /// invocation ids from the shared [`PlatformIds`]; the platform emits
    /// everything from the dispatch decision on. `on_done` runs once the
    /// whole group finished, with the batch size.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownFunction`] if `function` is out of range;
    /// [`PlatformError::ShuttingDown`] if the platform is stopping.
    pub fn submit_group(
        &self,
        function: usize,
        members: Vec<RemoteJob>,
        on_done: Option<GroupDone>,
    ) -> Result<(), PlatformError> {
        if function >= self.names.len() {
            return Err(PlatformError::UnknownFunction(format!("fn#{function}")));
        }
        if members.is_empty() {
            if let Some(on_done) = on_done {
                on_done(0);
            }
            return Ok(());
        }
        let tx = self.tx.as_ref().ok_or(PlatformError::ShuttingDown)?;
        let size = members.len() as i64;
        if let Some(tel) = &self.telemetry {
            tel.in_flight.add(size);
        }
        let sent = tx.send(Message::Group {
            function,
            members,
            on_done,
        });
        if sent.is_err() {
            if let Some(tel) = &self.telemetry {
                tel.in_flight.sub(size);
            }
            return Err(PlatformError::ShuttingDown);
        }
        Ok(())
    }

    /// The id counters this platform mints from ([`PlatformBuilder::ids`]).
    pub fn ids(&self) -> &Arc<PlatformIds> {
        &self.ids
    }

    /// Blocks until every invocation submitted so far has completed.
    ///
    /// # Errors
    ///
    /// [`PlatformError::ShuttingDown`] if the platform is stopping.
    pub fn drain(&self) -> Result<(), PlatformError> {
        let (done, rx) = channel::bounded(1);
        let tx = self.tx.as_ref().ok_or(PlatformError::ShuttingDown)?;
        tx.send(Message::Flush(done))
            .map_err(|_| PlatformError::ShuttingDown)?;
        rx.recv().map_err(|_| PlatformError::ShuttingDown)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &PlatformStats {
        &self.stats
    }

    /// Registered function names, in registration order.
    pub fn functions(&self) -> &[String] {
        &self.names
    }

    /// The attached trace recorder, if any ([`PlatformBuilder::trace`]).
    pub fn trace_recorder(&self) -> Option<&LiveTraceRecorder> {
        self.recorder.as_ref()
    }
}

impl Drop for FaasBatchPlatform {
    fn drop(&mut self) {
        // Closing the channel lets the dispatcher drain and exit.
        self.tx.take();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasbatch_exec::ExecutorConfig;
    use faasbatch_metrics::events::{AuditorSink, RecordReducer, TraceSink};
    use std::sync::atomic::AtomicUsize;

    fn fast_platform(multiplex: bool) -> (FaasBatchPlatform, Arc<AtomicUsize>) {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let store = ObjectStore::new();
        store.create_bucket("b").unwrap();
        let platform = PlatformBuilder::new()
            .window(Duration::from_millis(10))
            .multiplex(multiplex)
            .cold_start_delay(Duration::from_millis(1))
            .store(store)
            .register("count", move |_env| {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .register("io", |env| {
                let client = env.container.storage_client(&ClientConfig::for_bucket("b"));
                client.put("k", Bytes::from_static(b"v")).unwrap();
            })
            .start();
        (platform, counter)
    }

    #[test]
    fn invoke_runs_handler_and_reports_timing() {
        let (platform, counter) = fast_platform(true);
        let ticket = platform.invoke("count", Bytes::new()).unwrap();
        let outcome = ticket.wait();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert!(outcome.cold, "first invocation is cold");
        assert!(outcome.total() >= outcome.execution);
    }

    #[test]
    fn unknown_function_is_rejected() {
        let (platform, _) = fast_platform(true);
        assert_eq!(
            platform.invoke("nope", Bytes::new()).unwrap_err(),
            PlatformError::UnknownFunction("nope".into())
        );
    }

    #[test]
    fn concurrent_invocations_batch_into_one_container() {
        let (platform, counter) = fast_platform(true);
        let tickets: Vec<_> = (0..16)
            .map(|_| platform.invoke("count", Bytes::new()).unwrap())
            .collect();
        for t in tickets {
            t.wait();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        // All 16 arrived within one window: at most a couple of containers
        // even under scheduling jitter.
        let containers = platform.stats().containers_created.load(Ordering::Relaxed);
        assert!(containers <= 3, "created {containers} containers");
    }

    #[test]
    fn warm_reuse_after_first_batch() {
        let (platform, _) = fast_platform(true);
        platform.invoke("count", Bytes::new()).unwrap().wait();
        let second = platform.invoke("count", Bytes::new()).unwrap().wait();
        assert!(!second.cold, "second invocation should be warm");
    }

    #[test]
    fn container_env_exports_mux_trace() {
        use faasbatch_metrics::events::EventKind;
        let store = ObjectStore::new();
        store.create_bucket("b").unwrap();
        let env = ContainerEnv {
            id: 3,
            multiplexer: ResourceMultiplexer::new(),
            sdk: StorageSdk::new(store),
            multiplex: true,
        };
        let cfg = ClientConfig::for_bucket("b");
        env.storage_client(&cfg);
        env.storage_client(&cfg);
        let trace = env.take_mux_trace(SimTime::from_secs(1));
        assert_eq!(trace.len(), 2);
        assert!(
            matches!(trace[0].kind, EventKind::ClientCacheMiss { container, .. }
            if container == ContainerId::new(3))
        );
        assert!(matches!(trace[1].kind, EventKind::ClientCacheHit { .. }));
        assert!(env.take_mux_trace(SimTime::from_secs(2)).is_empty());
    }

    #[test]
    fn multiplexer_limits_client_creations() {
        let (platform, _) = fast_platform(true);
        let tickets: Vec<_> = (0..12)
            .map(|_| platform.invoke("io", Bytes::new()).unwrap())
            .collect();
        for t in tickets {
            t.wait();
        }
        platform.drain().unwrap();
        let created = platform.stats().clients_created.load(Ordering::Relaxed);
        let containers = platform.stats().containers_created.load(Ordering::Relaxed);
        assert!(
            created <= containers,
            "multiplexed: {created} clients for {containers} containers"
        );
    }

    #[test]
    fn without_multiplexer_every_invocation_creates() {
        let (platform, _) = fast_platform(false);
        let tickets: Vec<_> = (0..8)
            .map(|_| platform.invoke("io", Bytes::new()).unwrap())
            .collect();
        for t in tickets {
            t.wait();
        }
        platform.drain().unwrap();
        assert_eq!(platform.stats().clients_created.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn outcome_summary_aggregates() {
        let mk = |q: u64, e: u64, cold: bool, panicked: bool| InvokeOutcome {
            queued: Duration::from_millis(q),
            execution: Duration::from_millis(e),
            cold,
            restored: !cold,
            panicked,
        };
        let s = OutcomeSummary::from_outcomes(&[mk(10, 20, true, false), mk(30, 40, false, true)]);
        assert_eq!(s.count, 2);
        assert_eq!(s.cold, 1);
        assert_eq!(s.restored, 1);
        assert_eq!(s.panicked, 1);
        assert_eq!(s.mean_queued, Duration::from_millis(20));
        assert_eq!(s.mean_execution, Duration::from_millis(30));
        assert_eq!(s.max_total, Duration::from_millis(70));
        assert_eq!(
            OutcomeSummary::from_outcomes(&[]),
            OutcomeSummary::default()
        );
    }

    #[test]
    fn panicking_handler_is_contained() {
        let store = ObjectStore::new();
        store.create_bucket("b").unwrap();
        let platform = PlatformBuilder::new()
            .window(Duration::from_millis(10))
            .store(store)
            .register("boom", |env| {
                if env.payload.is_empty() {
                    panic!("user function crashed");
                }
            })
            .start();
        // Crash and success share one batch; both must report back.
        let crash = platform.invoke("boom", Bytes::new()).unwrap();
        let ok = platform.invoke("boom", Bytes::from_static(b"x")).unwrap();
        assert!(crash.wait().panicked);
        assert!(!ok.wait().panicked);
        // The container survives for the next invocation.
        let again = platform
            .invoke("boom", Bytes::from_static(b"y"))
            .unwrap()
            .wait();
        assert!(!again.panicked);
    }

    #[test]
    fn drop_drains_cleanly() {
        let (platform, counter) = fast_platform(true);
        for _ in 0..4 {
            let _ = platform.invoke("count", Bytes::new()).unwrap();
        }
        drop(platform);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn thread_per_job_backend_still_works() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let platform = PlatformBuilder::new()
            .window(Duration::from_millis(10))
            .cold_start_delay(Duration::from_millis(1))
            .backend(LiveBackend::ThreadPerJob)
            .register("count", move |_env| {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .start();
        let tickets: Vec<_> = (0..10)
            .map(|_| platform.invoke("count", Bytes::new()).unwrap())
            .collect();
        for t in tickets {
            t.wait();
        }
        platform.drain().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(platform.stats().invocations.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn traced_run_is_auditor_clean_with_exact_attribution() {
        for backend in [LiveBackend::Executor, LiveBackend::ThreadPerJob] {
            let recorder = LiveTraceRecorder::new();
            let counter = Arc::new(AtomicUsize::new(0));
            let c = counter.clone();
            let platform = PlatformBuilder::new()
                .window(Duration::from_millis(10))
                .cold_start_delay(Duration::from_millis(2))
                .backend(backend)
                .trace(recorder.clone())
                .register("count", move |_env| {
                    c.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(1));
                })
                .start();
            let tickets: Vec<_> = (0..12)
                .map(|_| platform.invoke("count", Bytes::new()).unwrap())
                .collect();
            for t in tickets {
                t.wait();
            }
            platform.drain().unwrap();
            // Second round to cover warm reuse transitions too.
            platform.invoke("count", Bytes::new()).unwrap().wait();
            platform.drain().unwrap();
            drop(platform);

            let trace = recorder.take_trace();
            let mut auditor = AuditorSink::new();
            for event in &trace {
                auditor.record(event);
            }
            assert!(
                auditor.finish().is_empty(),
                "{backend:?} trace has violations: {:?}",
                auditor.finish()
            );
            let mut reducer = RecordReducer::new();
            for event in &trace {
                reducer.on_event(event);
            }
            let reduced = reducer.finish();
            assert_eq!(reduced.records.len(), 13, "{backend:?} record count");
            for record in &reduced.records {
                assert!(record.is_consistent(), "{backend:?}: {record:?}");
            }
        }
    }

    #[test]
    fn keep_alive_evicts_idle_containers() {
        let recorder = LiveTraceRecorder::new();
        let platform = PlatformBuilder::new()
            .window(Duration::from_millis(5))
            .cold_start_delay(Duration::from_millis(1))
            .keep_alive(Duration::from_millis(20))
            .trace(recorder.clone())
            .register("noop", |_env| {})
            .start();
        platform.invoke("noop", Bytes::new()).unwrap().wait();
        platform.drain().unwrap();
        // Let the keep-alive timer fire well past the TTL.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(
            platform.stats().containers_evicted.load(Ordering::Relaxed),
            1
        );
        // The next invocation must cold-start a fresh container.
        let outcome = platform.invoke("noop", Bytes::new()).unwrap().wait();
        assert!(outcome.cold, "evicted container must not be reused");
        assert_eq!(
            platform.stats().containers_created.load(Ordering::Relaxed),
            2
        );
        platform.drain().unwrap();
        drop(platform);
        let trace = recorder.take_trace();
        assert!(
            trace.iter().any(|e| matches!(
                e.kind,
                EventKind::ContainerStateChange {
                    to: ContainerState::Terminated,
                    ..
                }
            )),
            "eviction must emit Idle → Terminated"
        );
    }

    #[test]
    fn snapshot_tier_restores_after_eviction() {
        let recorder = LiveTraceRecorder::new();
        let platform = PlatformBuilder::new()
            .window(Duration::from_millis(5))
            .cold_start_delay(Duration::from_millis(10))
            .restore_delay(Duration::from_millis(1))
            .snapshots(4)
            .keep_alive(Duration::from_millis(20))
            .trace(recorder.clone())
            .register("noop", |_env| {})
            .start();
        // First start is a full cold boot; it captures a template.
        let first = platform.invoke("noop", Bytes::new()).unwrap().wait();
        assert!(first.cold && !first.restored);
        platform.drain().unwrap();
        // Let keep-alive evict the warm container, forcing a pool miss.
        std::thread::sleep(Duration::from_millis(120));
        // The next start misses the pool but hits the template: a restore.
        let second = platform.invoke("noop", Bytes::new()).unwrap().wait();
        assert!(second.restored, "pool miss with a template must restore");
        assert!(!second.cold, "a restore is not a full cold boot");
        platform.drain().unwrap();
        assert_eq!(
            platform.stats().containers_restored.load(Ordering::Relaxed),
            1
        );
        assert_eq!(
            platform.stats().containers_created.load(Ordering::Relaxed),
            1,
            "the restore must not count as a cold creation"
        );
        drop(platform);

        let trace = recorder.take_trace();
        let mut auditor = AuditorSink::new();
        for event in &trace {
            auditor.record(event);
        }
        assert!(
            auditor.finish().is_empty(),
            "restored trace has violations: {:?}",
            auditor.finish()
        );
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, EventKind::RestoreBegin { .. })));
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, EventKind::RestoreDone { .. })));
        let mut reducer = RecordReducer::new();
        for event in &trace {
            reducer.on_event(event);
        }
        let reduced = reducer.finish();
        let restored: Vec<_> = reduced.records.iter().filter(|r| r.restored).collect();
        assert_eq!(restored.len(), 1, "one invocation rode the restore tier");
        assert!(!restored[0].cold);
        assert!(
            !restored[0].latency.cold_start.is_zero(),
            "the restore span lands in the cold_start component"
        );
        assert!(restored[0].is_consistent());
    }

    #[test]
    fn snapshot_templates_are_capacity_bounded() {
        // Capacity 1, two functions: the second function's first boot must
        // evict the first function's template, so re-starting function A
        // after eviction cold-boots again instead of restoring.
        let platform = PlatformBuilder::new()
            .window(Duration::from_millis(5))
            .cold_start_delay(Duration::from_millis(1))
            .restore_delay(Duration::from_millis(1))
            .snapshots(1)
            .keep_alive(Duration::from_millis(15))
            .register("a", |_env| {})
            .register("b", |_env| {})
            .start();
        platform.invoke("a", Bytes::new()).unwrap().wait(); // captures a
        platform.invoke("b", Bytes::new()).unwrap().wait(); // evicts a
        platform.drain().unwrap();
        std::thread::sleep(Duration::from_millis(100)); // both evicted from warm pool
        let again = platform.invoke("a", Bytes::new()).unwrap().wait();
        assert!(
            again.cold && !again.restored,
            "template for 'a' was evicted by the capacity bound"
        );
        platform.drain().unwrap();
    }

    #[test]
    fn seeded_executor_platform_is_usable() {
        let exec = Executor::new(ExecutorConfig {
            workers: 4,
            seed: 2024,
            ..ExecutorConfig::default()
        });
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let platform = PlatformBuilder::new()
            .window(Duration::from_millis(10))
            .cold_start_delay(Duration::from_millis(1))
            .executor(Arc::clone(&exec))
            .register("count", move |_env| {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .start();
        let tickets: Vec<_> = (0..20)
            .map(|_| platform.invoke("count", Bytes::new()).unwrap())
            .collect();
        for t in tickets {
            t.wait();
        }
        platform.drain().unwrap();
        drop(platform);
        assert_eq!(counter.load(Ordering::SeqCst), 20);
        assert!(exec.metrics().spawned_total >= 20, "batch ran on this pool");
    }
}
