//! The typed scheduler registry: every comparison scheduler by name.
//!
//! [`SchedulerKind`] enumerates the six schedulers of the comparison —
//! Vanilla, SFS, Kraken, Hiku, core-late-bind, and FaaSBatch — in
//! canonical sweep order, and [`SchedulerKind::parse`] turns a CLI /
//! bench name into a typed value with an error that lists every valid
//! name (mirroring [`crate::routing::RoutingKind::parse`]). A parsed
//! kind builds a ready-to-run [`Policy`] plus the dispatch interval its
//! harness run needs, so the CLI, bench bins, and test matrices all
//! share one spelling of each name and one construction path.

use crate::policy::{FaasBatchConfig, FaasBatchPolicy};
use faasbatch_schedulers::hiku::Hiku;
use faasbatch_schedulers::kraken::{Kraken, KrakenCalibration};
use faasbatch_schedulers::late_bind::CoreLateBind;
use faasbatch_schedulers::policy::Policy;
use faasbatch_schedulers::sfs::Sfs;
use faasbatch_schedulers::vanilla::Vanilla;
use faasbatch_simcore::time::SimDuration;
use std::fmt;

/// Error returned by [`SchedulerKind::parse`] for an unrecognised
/// scheduler name.
///
/// Its [`Display`](fmt::Display) lists every valid name, so CLI users see
/// the menu instead of a bare failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScheduler {
    /// The name that failed to parse.
    pub input: String,
}

impl fmt::Display for UnknownScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown scheduler `{}`; valid schedulers: ", self.input)?;
        for (i, kind) in SchedulerKind::ALL.into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", kind.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownScheduler {}

/// Enumerates the comparison schedulers, for CLI / bench sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// One container per invocation (`faasbatch_schedulers::vanilla`).
    Vanilla,
    /// Per-invocation containers + aging CPU weights
    /// (`faasbatch_schedulers::sfs`).
    Sfs,
    /// SLO-slack serial batching (`faasbatch_schedulers::kraken`).
    Kraken,
    /// Pull-based worker-initiated scheduling
    /// (`faasbatch_schedulers::hiku`).
    Hiku,
    /// Core-granular late binding (`faasbatch_schedulers::late_bind`).
    CoreLateBind,
    /// The paper's batching + expansion scheduler
    /// ([`crate::policy::FaasBatchPolicy`]).
    FaasBatch,
}

/// Everything needed to instantiate any scheduler of the comparison.
///
/// Kraken needs a calibration (normally derived from a Vanilla run of the
/// same workload) and FaaSBatch a full [`FaasBatchConfig`]; the rest are
/// parameter-free. Bundling them lets one setup build all six.
#[derive(Debug, Clone)]
pub struct SchedulerSetup {
    /// Dispatch window for the windowed schedulers (Kraken, FaaSBatch).
    pub window: SimDuration,
    /// Kraken's execution-time calibration.
    pub kraken: KrakenCalibration,
    /// FaaSBatch's full configuration (its `window` field should agree
    /// with `window`; [`SchedulerSetup::new`] keeps them in sync).
    pub faasbatch: FaasBatchConfig,
}

impl SchedulerSetup {
    /// A setup with default Kraken calibration and default FaaSBatch
    /// knobs over the given dispatch window.
    pub fn new(window: SimDuration) -> Self {
        SchedulerSetup {
            window,
            kraken: KrakenCalibration::default(),
            faasbatch: FaasBatchConfig::with_window(window),
        }
    }

    /// Replaces the Kraken calibration (e.g. with
    /// [`KrakenCalibration::from_vanilla`]).
    pub fn with_kraken_calibration(mut self, calibration: KrakenCalibration) -> Self {
        self.kraken = calibration;
        self
    }

    /// Replaces the FaaSBatch configuration wholesale.
    pub fn with_faasbatch_config(mut self, cfg: FaasBatchConfig) -> Self {
        self.faasbatch = cfg;
        self
    }
}

impl SchedulerKind {
    /// All comparison schedulers, in sweep order.
    pub const ALL: [SchedulerKind; 6] = [
        SchedulerKind::Vanilla,
        SchedulerKind::Sfs,
        SchedulerKind::Kraken,
        SchedulerKind::Hiku,
        SchedulerKind::CoreLateBind,
        SchedulerKind::FaasBatch,
    ];

    /// CLI name of the scheduler.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Vanilla => "vanilla",
            SchedulerKind::Sfs => "sfs",
            SchedulerKind::Kraken => "kraken",
            SchedulerKind::Hiku => "hiku",
            SchedulerKind::CoreLateBind => "core-late-bind",
            SchedulerKind::FaasBatch => "faasbatch",
        }
    }

    /// Parses a CLI name; the error lists the valid names.
    pub fn parse(s: &str) -> Result<SchedulerKind, UnknownScheduler> {
        SchedulerKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| UnknownScheduler {
                input: s.to_owned(),
            })
    }

    /// Builds a fresh policy instance plus the dispatch interval to pass
    /// to the harness (`Some(window)` for the windowed schedulers, `None`
    /// for the arrival-driven ones).
    pub fn build(self, setup: &SchedulerSetup) -> (Box<dyn Policy>, Option<SimDuration>) {
        match self {
            SchedulerKind::Vanilla => (Box::new(Vanilla::new()), None),
            SchedulerKind::Sfs => (Box::new(Sfs::new()), None),
            SchedulerKind::Kraken => (
                Box::new(Kraken::new(setup.kraken.clone(), setup.window)),
                Some(setup.window),
            ),
            SchedulerKind::Hiku => (Box::new(Hiku::new()), None),
            SchedulerKind::CoreLateBind => (Box::new(CoreLateBind::new()), None),
            SchedulerKind::FaasBatch => (
                Box::new(FaasBatchPolicy::new(setup.faasbatch.clone())),
                Some(setup.faasbatch.window),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_names() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::parse(kind.name()), Ok(kind));
        }
    }

    #[test]
    fn unknown_name_lists_valid_schedulers() {
        let err = SchedulerKind::parse("shortest-job-first").unwrap_err();
        assert_eq!(err.input, "shortest-job-first");
        let msg = err.to_string();
        for kind in SchedulerKind::ALL {
            assert!(
                msg.contains(kind.name()),
                "error message should list `{}`: {msg}",
                kind.name()
            );
        }
    }

    #[test]
    fn build_names_match_parse_names() {
        let setup = SchedulerSetup::new(SimDuration::from_millis(200));
        for kind in SchedulerKind::ALL {
            let (policy, interval) = kind.build(&setup);
            assert_eq!(policy.name(), kind.name());
            // Windowed schedulers get a dispatch interval; the rest don't.
            let windowed = matches!(kind, SchedulerKind::Kraken | SchedulerKind::FaasBatch);
            assert_eq!(interval.is_some(), windowed, "{}", kind.name());
        }
    }
}
