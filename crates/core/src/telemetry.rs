//! Live-platform instrumentation onto the telemetry plane (DESIGN.md §18).
//!
//! Two pieces:
//!
//! * [`PlatformTelemetry`] — the platform's recording handles (warm hits,
//!   cold boots, batch sizes, in-flight gauge, per-function end-to-end
//!   latency histograms), registered once on a
//!   [`MetricRegistry`] and attached via
//!   [`PlatformBuilder::telemetry`](crate::platform::PlatformBuilder::telemetry).
//!   Hot-path recording is a relaxed `fetch_add` on sharded atomics.
//! * [`register_executor`] — polled gauges/counters over
//!   [`ExecutorMetrics`](faasbatch_exec::ExecutorMetrics). `faasbatch-exec`
//!   is dependency-free by design, so instead of recording into the
//!   registry it keeps its own atomics and this helper exposes them as
//!   closure-backed metrics read at scrape time.

use faasbatch_exec::Executor;
use faasbatch_metrics::telemetry::{Counter, Gauge, Histogram, MetricRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Recording handles for one live platform. Build with
/// [`PlatformTelemetry::new`], attach with
/// [`PlatformBuilder::telemetry`](crate::platform::PlatformBuilder::telemetry);
/// clones share the same cells.
pub struct PlatformTelemetry {
    registry: MetricRegistry,
    pub(crate) warm_hits: Counter,
    pub(crate) cold_boots: Counter,
    pub(crate) restores: Counter,
    pub(crate) batches: Counter,
    pub(crate) invocations: Counter,
    pub(crate) in_flight: Gauge,
    pub(crate) batch_size: Histogram,
    e2e: Mutex<HashMap<usize, Histogram>>,
}

impl std::fmt::Debug for PlatformTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlatformTelemetry")
            .field("batches", &self.batches.value())
            .field("in_flight", &self.in_flight.value())
            .finish()
    }
}

impl PlatformTelemetry {
    /// Registers the platform metric families on `registry`.
    pub fn new(registry: &MetricRegistry) -> Arc<Self> {
        Arc::new(PlatformTelemetry {
            registry: registry.clone(),
            warm_hits: registry.counter(
                "faasbatch_platform_warm_hits_total",
                "Batches dispatched onto a pooled warm container.",
            ),
            cold_boots: registry.counter(
                "faasbatch_platform_cold_boots_total",
                "Batches that had to create a fresh container via a full cold boot.",
            ),
            restores: registry.counter(
                "faasbatch_platform_restores_total",
                "Batches served by restoring a snapshot template instead of booting cold.",
            ),
            batches: registry.counter(
                "faasbatch_platform_batches_total",
                "Dispatch decisions (batches) made.",
            ),
            invocations: registry.counter(
                "faasbatch_platform_invocations_total",
                "Invocations completed end to end.",
            ),
            in_flight: registry.gauge(
                "faasbatch_platform_in_flight",
                "Invocations accepted but not yet completed.",
            ),
            batch_size: registry.histogram(
                "faasbatch_platform_batch_size",
                "Members per dispatched batch (count, not microseconds).",
            ),
            e2e: Mutex::new(HashMap::new()),
        })
    }

    /// Pre-registers the per-function latency family for `function`, so
    /// exposition order follows registration order rather than first
    /// completion. Called by the builder for every registered function.
    pub(crate) fn ensure_function(&self, function: usize) {
        let mut map = self.e2e.lock();
        map.entry(function).or_insert_with(|| {
            let label = function.to_string();
            self.registry.histogram_with(
                "faasbatch_platform_e2e_latency_us",
                "End-to-end invocation latency (queued + execution), microseconds.",
                &[("function", &label)],
            )
        });
    }

    /// One dispatch decision: batch size plus the warm/restore/cold split
    /// (`cold` and `restored` are mutually exclusive; neither = warm hit).
    pub(crate) fn on_batch(&self, size: usize, cold: bool, restored: bool) {
        self.batches.inc();
        self.batch_size.record(size as u64);
        if cold {
            self.cold_boots.inc();
        } else if restored {
            self.restores.inc();
        } else {
            self.warm_hits.inc();
        }
    }

    /// One member completed: end-to-end latency in microseconds.
    pub(crate) fn on_member_done(&self, function: usize, e2e_us: u64) {
        self.invocations.inc();
        self.in_flight.sub(1);
        // Functions are pre-registered by the builder; the lock here is
        // uncontended in steady state and only guards the map lookup.
        let hist = {
            let map = self.e2e.lock();
            map.get(&function).cloned()
        };
        match hist {
            Some(hist) => hist.record(e2e_us),
            None => {
                self.ensure_function(function);
                if let Some(hist) = self.e2e.lock().get(&function) {
                    hist.record(e2e_us);
                }
            }
        }
    }
}

/// Exposes a live [`Executor`]'s internal counters on `registry` as polled
/// metrics: per-worker run/steal/park counts and queue depths, the
/// injector depth, in-flight levels, and timer-wheel occupancy. Call once
/// per executor; every closure reads a fresh
/// [`metrics()`](Executor::metrics) snapshot at scrape time.
pub fn register_executor(registry: &MetricRegistry, executor: &Arc<Executor>) {
    let workers = executor.workers();
    let exec = Arc::clone(executor);
    registry.gauge_fn(
        "faasbatch_exec_workers",
        "Worker threads in the live executor pool.",
        move || exec.workers() as i64,
    );
    let exec = Arc::clone(executor);
    registry.gauge_fn(
        "faasbatch_exec_in_flight",
        "Tasks spawned and not yet completed.",
        move || exec.metrics().in_flight as i64,
    );
    let exec = Arc::clone(executor);
    registry.gauge_fn(
        "faasbatch_exec_peak_in_flight",
        "High-water mark of in-flight tasks since start (or last reset).",
        move || exec.metrics().peak_in_flight as i64,
    );
    let exec = Arc::clone(executor);
    registry.counter_fn(
        "faasbatch_exec_spawned_total",
        "Tasks ever spawned.",
        move || exec.metrics().spawned_total,
    );
    let exec = Arc::clone(executor);
    registry.counter_fn(
        "faasbatch_exec_shed_total",
        "Local-queue overflows shed to the global injector.",
        move || exec.metrics().shed_total,
    );
    let exec = Arc::clone(executor);
    registry.gauge_fn(
        "faasbatch_exec_injector_depth",
        "Tasks waiting in the global injector.",
        move || exec.metrics().injector_depth as i64,
    );
    let exec = Arc::clone(executor);
    registry.gauge_fn(
        "faasbatch_exec_timer_occupancy",
        "Entries currently occupying the timer wheel.",
        move || exec.metrics().timer_occupancy as i64,
    );
    let exec = Arc::clone(executor);
    registry.counter_fn(
        "faasbatch_exec_timer_scheduled_total",
        "Timers ever scheduled on the wheel.",
        move || exec.metrics().timer_scheduled_total,
    );
    for worker in 0..workers {
        let label = worker.to_string();
        let exec = Arc::clone(executor);
        registry.counter_fn_with(
            "faasbatch_exec_executed_total",
            "Task polls per worker.",
            &[("worker", &label)],
            move || {
                exec.metrics()
                    .executed_per_worker
                    .get(worker)
                    .copied()
                    .unwrap_or(0)
            },
        );
        let exec = Arc::clone(executor);
        registry.counter_fn_with(
            "faasbatch_exec_stolen_total",
            "Tasks stolen per (thief) worker.",
            &[("worker", &label)],
            move || {
                exec.metrics()
                    .stolen_per_worker
                    .get(worker)
                    .copied()
                    .unwrap_or(0)
            },
        );
        let exec = Arc::clone(executor);
        registry.counter_fn_with(
            "faasbatch_exec_parked_total",
            "Times each worker parked (went idle).",
            &[("worker", &label)],
            move || {
                exec.metrics()
                    .parked_per_worker
                    .get(worker)
                    .copied()
                    .unwrap_or(0)
            },
        );
        let exec = Arc::clone(executor);
        registry.gauge_fn_with(
            "faasbatch_exec_queue_depth",
            "Current local-queue depth per worker.",
            &[("worker", &label)],
            move || {
                exec.metrics()
                    .queue_depths
                    .get(worker)
                    .copied()
                    .unwrap_or(0) as i64
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasbatch_exec::ExecutorConfig;

    #[test]
    fn platform_telemetry_registers_and_records() {
        let registry = MetricRegistry::new();
        let telemetry = PlatformTelemetry::new(&registry);
        telemetry.ensure_function(0);
        telemetry.on_batch(4, true, false);
        telemetry.on_batch(2, false, false);
        telemetry.on_batch(1, false, true);
        telemetry.in_flight.add(7);
        for _ in 0..7 {
            telemetry.on_member_done(0, 1_500);
        }
        let text = registry.render_prometheus();
        assert!(text.contains("faasbatch_platform_cold_boots_total 1"));
        assert!(text.contains("faasbatch_platform_warm_hits_total 1"));
        assert!(text.contains("faasbatch_platform_restores_total 1"));
        assert!(text.contains("faasbatch_platform_batches_total 3"));
        assert!(text.contains("faasbatch_platform_invocations_total 7"));
        assert!(text.contains("faasbatch_platform_in_flight 0"));
        assert!(text.contains("faasbatch_platform_e2e_latency_us_count{function=\"0\"} 7"));
    }

    #[test]
    fn executor_registration_exposes_worker_families() {
        let exec = Executor::new(ExecutorConfig {
            workers: 2,
            seed: 9,
            ..ExecutorConfig::default()
        });
        let registry = MetricRegistry::new();
        register_executor(&registry, &exec);
        exec.spawn(async {});
        std::thread::sleep(std::time::Duration::from_millis(30));
        let text = registry.render_prometheus();
        assert!(text.contains("faasbatch_exec_workers 2"));
        assert!(text.contains("faasbatch_exec_spawned_total 1"));
        assert!(text.contains("faasbatch_exec_executed_total{worker=\"0\"}"));
        assert!(text.contains("faasbatch_exec_queue_depth{worker=\"1\"}"));
        exec.shutdown();
    }
}
