//! Pluggable routing policies, shared by the simulated fleet and the live
//! gateway.
//!
//! The router places *function groups* (all invocations of one function
//! arriving within one dispatch window), never individual invocations, so
//! the Invoke Mapper's never-split invariant extends to the fleet: a group
//! lands on exactly one worker and is batched there as usual. The same
//! policies drive both `faasbatch-fleet` (simulated replay) and
//! `faasbatch-gateway` (live sharded front door) — the trait only sees
//! the [`RouterCtx`], so one implementation serves both clocks.
//!
//! Policies see only worker liveness plus router-side load *estimates* —
//! mirroring a real front door that cannot inspect worker internals. All
//! estimator state is deterministic, so routing (and hence the whole fleet
//! replay) is bit-reproducible.

use faasbatch_container::ids::FunctionId;
use faasbatch_simcore::time::{SimDuration, SimTime};
use std::fmt;

/// Router-side load estimate for one worker.
///
/// The router charges each assignment to the estimate at routing time and
/// lets it decay as estimated completions pass — it never reads the worker's
/// actual simulation state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerLoad {
    /// Estimated completion instants of assigned, not-yet-finished
    /// invocations (pruned lazily against the routing clock).
    pending: Vec<SimTime>,
    /// When the worker is estimated to drain everything assigned so far,
    /// treating its capacity as serial (a deliberate, deterministic proxy).
    busy_until: SimTime,
    /// Invocations ever assigned to this worker.
    assigned: u64,
}

impl WorkerLoad {
    /// Estimated invocations still runnable on the worker.
    pub fn runnable(&self) -> usize {
        self.pending.len()
    }

    /// Estimated instant the worker drains its queue.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Invocations ever assigned to this worker.
    pub fn assigned(&self) -> u64 {
        self.assigned
    }

    /// Drops estimates that have completed by `now`.
    pub fn observe(&mut self, now: SimTime) {
        self.pending.retain(|&done| done > now);
    }

    /// Charges one invocation of `work` assigned at `now`.
    pub fn note(&mut self, now: SimTime, work: SimDuration) {
        self.busy_until = self.busy_until.max(now) + work;
        self.pending.push(now + work);
        self.assigned += 1;
    }
}

/// What a routing policy sees when placing one function group.
#[derive(Debug)]
pub struct RouterCtx<'a> {
    /// First (effective) arrival of the group being placed.
    pub now: SimTime,
    /// The function whose group is being placed.
    pub function: FunctionId,
    /// Liveness per worker at `now`; dead or drained workers are not
    /// eligible and policies must not pick them.
    pub alive: &'a [bool],
    /// Router-side load estimates, one per worker.
    pub load: &'a [WorkerLoad],
}

impl RouterCtx<'_> {
    /// Indices of workers that may receive the group.
    pub fn eligible(&self) -> impl Iterator<Item = usize> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(w, _)| w)
    }
}

/// A fleet routing policy: places one function group on one worker.
pub trait RoutingPolicy {
    /// Policy name as it appears in reports.
    fn name(&self) -> String;

    /// Picks a worker for the group described by `ctx`. Must return an index
    /// with `ctx.alive[index]` true; at least one worker is always alive
    /// when this is called.
    fn route(&mut self, ctx: &RouterCtx<'_>) -> usize;
}

/// Cycles through live workers in index order.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates the policy starting at worker 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> String {
        "round-robin".to_owned()
    }

    fn route(&mut self, ctx: &RouterCtx<'_>) -> usize {
        let n = ctx.alive.len();
        for step in 0..n {
            let w = (self.next + step) % n;
            if ctx.alive[w] {
                self.next = (w + 1) % n;
                return w;
            }
        }
        unreachable!("route called with no live workers")
    }
}

/// Picks the worker with the least runnable-task pressure (fewest estimated
/// in-flight invocations; ties broken by estimated drain time, then index).
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl RoutingPolicy for LeastLoaded {
    fn name(&self) -> String {
        "least-loaded".to_owned()
    }

    fn route(&mut self, ctx: &RouterCtx<'_>) -> usize {
        ctx.eligible()
            .min_by_key(|&w| (ctx.load[w].runnable(), ctx.load[w].busy_until(), w))
            .expect("route called with no live workers")
    }
}

/// Routes each function to a stable hash-derived worker, maximising warm
/// container and multiplexer-cache reuse. When workers fail, the function
/// re-hashes over the surviving set (rendezvous-free but deterministic).
#[derive(Debug, Clone, Default)]
pub struct WarmAffinity;

impl WarmAffinity {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

/// splitmix64 finalizer — a stable, platform-independent hash.
///
/// Used by [`WarmAffinity`] for function→worker placement and by the live
/// gateway for function→shard selection, so the mapping is identical across
/// runs, builds, and machines.
pub fn stable_hash(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RoutingPolicy for WarmAffinity {
    fn name(&self) -> String {
        "warm-affinity".to_owned()
    }

    fn route(&mut self, ctx: &RouterCtx<'_>) -> usize {
        let live: Vec<usize> = ctx.eligible().collect();
        assert!(!live.is_empty(), "route called with no live workers");
        let h = stable_hash(u64::from(ctx.function.index()));
        live[(h % live.len() as u64) as usize]
    }
}

/// Hiku-style pull routing: the worker that has been idle longest (earliest
/// estimated drain instant) pulls the next group from the shared queue.
#[derive(Debug, Clone, Default)]
pub struct PullBased;

impl PullBased {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl RoutingPolicy for PullBased {
    fn name(&self) -> String {
        "pull-based".to_owned()
    }

    fn route(&mut self, ctx: &RouterCtx<'_>) -> usize {
        ctx.eligible()
            .min_by_key(|&w| (ctx.load[w].busy_until(), ctx.load[w].runnable(), w))
            .expect("route called with no live workers")
    }
}

/// Error returned by [`RoutingKind::parse`] for an unrecognised policy name.
///
/// Its [`Display`](fmt::Display) lists every valid name, so CLI users see
/// the menu instead of a bare failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownRoutingPolicy {
    /// The name that failed to parse.
    pub input: String,
}

impl fmt::Display for UnknownRoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown routing policy `{}`; valid policies: ",
            self.input
        )?;
        for (i, kind) in RoutingKind::ALL.into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", kind.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownRoutingPolicy {}

/// Enumerates the built-in policies, for CLI / bench sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`WarmAffinity`].
    WarmAffinity,
    /// [`PullBased`].
    PullBased,
}

impl RoutingKind {
    /// All built-in policies, in sweep order.
    pub const ALL: [RoutingKind; 4] = [
        RoutingKind::RoundRobin,
        RoutingKind::LeastLoaded,
        RoutingKind::WarmAffinity,
        RoutingKind::PullBased,
    ];

    /// CLI name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            RoutingKind::RoundRobin => "round-robin",
            RoutingKind::LeastLoaded => "least-loaded",
            RoutingKind::WarmAffinity => "warm-affinity",
            RoutingKind::PullBased => "pull-based",
        }
    }

    /// Parses a CLI name; the error lists the valid names.
    pub fn parse(s: &str) -> Result<RoutingKind, UnknownRoutingPolicy> {
        RoutingKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| UnknownRoutingPolicy {
                input: s.to_owned(),
            })
    }

    /// Builds a fresh policy instance.
    pub fn build(self) -> Box<dyn RoutingPolicy> {
        match self {
            RoutingKind::RoundRobin => Box::new(RoundRobin::new()),
            RoutingKind::LeastLoaded => Box::new(LeastLoaded::new()),
            RoutingKind::WarmAffinity => Box::new(WarmAffinity::new()),
            RoutingKind::PullBased => Box::new(PullBased::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(alive: &'a [bool], load: &'a [WorkerLoad], f: u32) -> RouterCtx<'a> {
        RouterCtx {
            now: SimTime::from_secs(1),
            function: FunctionId::new(f),
            alive,
            load,
        }
    }

    #[test]
    fn round_robin_cycles_and_skips_dead() {
        let mut p = RoundRobin::new();
        let load = vec![WorkerLoad::default(); 3];
        let alive = [true, false, true];
        let picks: Vec<usize> = (0..4).map(|_| p.route(&ctx(&alive, &load, 0))).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn least_loaded_prefers_fewest_runnable() {
        let mut p = LeastLoaded::new();
        let mut load = vec![WorkerLoad::default(); 2];
        load[0].note(SimTime::ZERO, SimDuration::from_secs(10));
        let alive = [true, true];
        assert_eq!(p.route(&ctx(&alive, &load, 0)), 1);
    }

    #[test]
    fn warm_affinity_is_stable_per_function() {
        let mut p = WarmAffinity::new();
        let load = vec![WorkerLoad::default(); 4];
        let alive = [true; 4];
        let w1 = p.route(&ctx(&alive, &load, 7));
        let w2 = p.route(&ctx(&alive, &load, 7));
        assert_eq!(w1, w2);
        // With workers down, the function still maps somewhere live.
        let degraded = [false, true, true, false];
        let w3 = p.route(&ctx(&degraded, &load, 7));
        assert!(degraded[w3]);
    }

    #[test]
    fn pull_based_prefers_earliest_idle() {
        let mut p = PullBased::new();
        let mut load = vec![WorkerLoad::default(); 2];
        load[0].note(SimTime::ZERO, SimDuration::from_secs(5));
        load[1].note(SimTime::ZERO, SimDuration::from_secs(1));
        let alive = [true, true];
        assert_eq!(p.route(&ctx(&alive, &load, 0)), 1);
    }

    #[test]
    fn load_estimates_decay() {
        let mut l = WorkerLoad::default();
        l.note(SimTime::ZERO, SimDuration::from_secs(1));
        l.note(SimTime::ZERO, SimDuration::from_secs(3));
        assert_eq!(l.runnable(), 2);
        l.observe(SimTime::from_secs(2));
        assert_eq!(l.runnable(), 1);
        assert_eq!(l.assigned(), 2);
        assert_eq!(l.busy_until(), SimTime::from_secs(4));
    }

    #[test]
    fn kind_round_trips_names() {
        for k in RoutingKind::ALL {
            assert_eq!(RoutingKind::parse(k.name()), Ok(k));
            assert_eq!(k.build().name(), k.name());
        }
        let err = RoutingKind::parse("nope").unwrap_err();
        assert_eq!(err.input, "nope");
        let msg = err.to_string();
        for k in RoutingKind::ALL {
            assert!(msg.contains(k.name()), "error should list {}", k.name());
        }
    }

    #[test]
    fn stable_hash_is_deterministic_and_spreads() {
        for x in 0..64 {
            assert_eq!(stable_hash(x), stable_hash(x));
        }
        let distinct: std::collections::HashSet<u64> = (0..64).map(stable_hash).collect();
        assert_eq!(distinct.len(), 64);
    }
}
