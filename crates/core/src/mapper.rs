//! The Invoke Mapper (paper §III-B).
//!
//! The mapper listens to the request queue for a fixed time window (default
//! 0.2 s) and classifies everything that arrived into *function groups* —
//! all concurrent invocations of an identical function — so each group can
//! be placed into a **single** container instead of one container per
//! invocation.

use faasbatch_container::ids::FunctionId;
use faasbatch_simcore::time::SimDuration;
use faasbatch_trace::workload::Invocation;
use std::collections::BTreeMap;

/// All invocations of one function observed within one dispatch window.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionGroup {
    /// The shared function.
    pub function: FunctionId,
    /// The grouped invocations, in arrival order.
    pub invocations: Vec<Invocation>,
}

impl FunctionGroup {
    /// Number of invocations in the group.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// True when the group is empty (never produced by the mapper).
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }
}

/// Groups concurrent invocations by function across a dispatch window.
///
/// # Examples
///
/// ```
/// use faasbatch_core::mapper::InvokeMapper;
/// use faasbatch_container::ids::{FunctionId, InvocationId};
/// use faasbatch_simcore::time::{SimDuration, SimTime};
/// use faasbatch_trace::workload::Invocation;
///
/// let mut mapper = InvokeMapper::new(SimDuration::from_millis(200));
/// for n in 0..3 {
///     mapper.observe(Invocation {
///         id: InvocationId::new(n),
///         function: FunctionId::new(0),
///         arrival: SimTime::ZERO,
///         work: SimDuration::from_millis(10),
///     });
/// }
/// let groups = mapper.drain();
/// assert_eq!(groups.len(), 1);
/// assert_eq!(groups[0].len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct InvokeMapper {
    window: SimDuration,
    /// Per-function pending lists; BTreeMap so drains are deterministic.
    pending: BTreeMap<FunctionId, Vec<Invocation>>,
    /// Optional cap on group size (None = the paper's stuff-everything
    /// strategy).
    max_group: Option<usize>,
}

impl InvokeMapper {
    /// The paper's default dispatch window.
    pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_millis(200);

    /// Creates a mapper with the given dispatch window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        InvokeMapper {
            window,
            pending: BTreeMap::new(),
            max_group: None,
        }
    }

    /// Caps group sizes (an ablation knob; the paper batches everything).
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn with_max_group(mut self, max: usize) -> Self {
        assert!(max > 0, "max group must be positive");
        self.max_group = Some(max);
        self
    }

    /// The dispatch window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Invocations currently buffered.
    pub fn pending_count(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Buffers one arriving invocation into its function's group.
    pub fn observe(&mut self, invocation: Invocation) {
        self.pending
            .entry(invocation.function)
            .or_default()
            .push(invocation);
    }

    /// Closes the window: returns every non-empty function group (split by
    /// the group cap if one is set) and resets the buffers.
    pub fn drain(&mut self) -> Vec<FunctionGroup> {
        let pending = std::mem::take(&mut self.pending);
        let mut out = Vec::new();
        for (function, invocations) in pending {
            match self.max_group {
                None => out.push(FunctionGroup {
                    function,
                    invocations,
                }),
                Some(cap) => {
                    let mut invocations = invocations;
                    while !invocations.is_empty() {
                        let rest = invocations.split_off(invocations.len().min(cap));
                        out.push(FunctionGroup {
                            function,
                            invocations,
                        });
                        invocations = rest;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasbatch_container::ids::InvocationId;
    use faasbatch_simcore::time::SimTime;

    fn inv(n: u64, f: u32) -> Invocation {
        Invocation {
            id: InvocationId::new(n),
            function: FunctionId::new(f),
            arrival: SimTime::from_millis(n),
            work: SimDuration::from_millis(1),
        }
    }

    #[test]
    fn groups_by_function() {
        let mut m = InvokeMapper::new(InvokeMapper::DEFAULT_WINDOW);
        m.observe(inv(0, 0));
        m.observe(inv(1, 1));
        m.observe(inv(2, 0));
        assert_eq!(m.pending_count(), 3);
        let groups = m.drain();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].function, FunctionId::new(0));
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].function, FunctionId::new(1));
        assert_eq!(groups[1].len(), 1);
        assert_eq!(m.pending_count(), 0);
    }

    #[test]
    fn groups_never_mix_functions() {
        let mut m = InvokeMapper::new(InvokeMapper::DEFAULT_WINDOW);
        for n in 0..20 {
            m.observe(inv(n, (n % 3) as u32));
        }
        for g in m.drain() {
            assert!(g.invocations.iter().all(|i| i.function == g.function));
        }
    }

    #[test]
    fn drain_preserves_arrival_order_within_group() {
        let mut m = InvokeMapper::new(InvokeMapper::DEFAULT_WINDOW);
        for n in 0..5 {
            m.observe(inv(n, 0));
        }
        let groups = m.drain();
        let ids: Vec<u64> = groups[0].invocations.iter().map(|i| i.id.value()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_drain_is_empty() {
        let mut m = InvokeMapper::new(InvokeMapper::DEFAULT_WINDOW);
        assert!(m.drain().is_empty());
    }

    #[test]
    fn max_group_splits() {
        let mut m = InvokeMapper::new(InvokeMapper::DEFAULT_WINDOW).with_max_group(4);
        for n in 0..10 {
            m.observe(inv(n, 0));
        }
        let groups = m.drain();
        assert_eq!(groups.len(), 3);
        assert_eq!(
            groups.iter().map(FunctionGroup::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        // Order preserved across the split.
        let ids: Vec<u64> = groups
            .iter()
            .flat_map(|g| g.invocations.iter().map(|i| i.id.value()))
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        InvokeMapper::new(SimDuration::ZERO);
    }
}
