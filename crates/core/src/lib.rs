//! # faasbatch-core
//!
//! The paper's primary contribution: **FaaSBatch** (Wu et al., ICDCS 2023) —
//! a serverless scheduling framework that batches concurrent invocations of
//! the same function into a *single* container, expands them there as
//! parallel threads, and multiplexes redundant resources (storage clients)
//! created during execution.
//!
//! Three modules mirror the paper's architecture (Fig. 6):
//!
//! * [`mapper::InvokeMapper`] — classifies the requests of one dispatch
//!   window (default 0.2 s) into per-function groups (§III-B);
//! * the Inline-Parallel Producer — embodied by
//!   [`policy::FaasBatchPolicy`] in simulation (groups dispatched
//!   `Parallel` onto one container each) and by the live
//!   [`platform::FaasBatchPlatform`] dispatcher (§III-C);
//! * [`multiplexer::ResourceMultiplexer`] — the per-container
//!   `resource → Hash(args) → instance` cache with single-flight creation
//!   (§III-D).
//!
//! Use [`policy::run_faasbatch`] to run the simulated evaluation against
//! the baselines in `faasbatch-schedulers`, or
//! [`platform::PlatformBuilder`] to run real closures on a live,
//! thread-backed platform.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use faasbatch_core::platform::PlatformBuilder;
//! use std::time::Duration;
//!
//! let platform = PlatformBuilder::new()
//!     .window(Duration::from_millis(5))
//!     .register("hello", |env| {
//!         assert_eq!(env.payload, Bytes::from_static(b"hi"));
//!     })
//!     .start();
//! let outcome = platform.invoke("hello", Bytes::from_static(b"hi"))?.wait();
//! assert!(outcome.cold);
//! # Ok::<(), faasbatch_core::platform::PlatformError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code propagates errors or uses `expect` with context; bare
// `unwrap()` stays confined to tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod mapper;
pub mod multiplexer;
pub mod platform;
pub mod policy;
pub mod routing;
pub mod scheduler_kind;
pub mod telemetry;

pub use mapper::{FunctionGroup, InvokeMapper};
pub use multiplexer::{mux_trace_events, MultiplexerStats, MuxEvent, ResourceMultiplexer};
pub use platform::{FaasBatchPlatform, InvokeOutcome, OutcomeSummary, PlatformBuilder};
pub use policy::{
    run_faasbatch, run_faasbatch_source, run_faasbatch_source_traced, run_faasbatch_traced,
    FaasBatchConfig, FaasBatchPolicy,
};
pub use routing::{RoutingKind, RoutingPolicy, UnknownRoutingPolicy};
pub use scheduler_kind::{SchedulerKind, SchedulerSetup, UnknownScheduler};
pub use telemetry::{register_executor, PlatformTelemetry};
