//! The Resource Multiplexer (paper §III-D).
//!
//! Inside each container, the multiplexer intercepts resource-creation
//! requests (canonically: cloud-storage client construction), hashes the
//! creation arguments, and serves repeats from an in-memory
//! `resource → Hash(args) → instance` cache. Creation is *single-flight*:
//! when several expanded threads request the same resource at once, exactly
//! one builds it and the rest wait for that build — so a batch of k
//! identical I/O invocations pays one creation instead of k.
//!
//! Following the paper, keys are the *hash* of the arguments ("we employ a
//! hashing technique to creation arguments to reduce memory overhead and
//! speed up the matching process. … there is no need to consider hash
//! collisions that occur with extremely low probability" — collisions at
//! container scope are negligible).

use faasbatch_container::ids::ContainerId;
use faasbatch_metrics::events::{EventKind, SimEvent};
use faasbatch_simcore::time::SimTime;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// One journalled multiplexer operation, in the order the cache observed it.
///
/// The multiplexer is wall-clock-free and container-agnostic, so it journals
/// raw operations; [`mux_trace_events`] stamps them with a container and a
/// timestamp to join the simulation's [`SimEvent`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxEvent {
    /// Request served from cache (or by waiting on an in-flight build).
    Hit {
        /// Hashed creation arguments.
        key: u64,
    },
    /// Request that actually built the resource.
    Miss {
        /// Hashed creation arguments.
        key: u64,
    },
    /// A built resource was evicted by the LRU bound.
    Evicted {
        /// Hashed creation arguments of the victim.
        key: u64,
    },
}

/// Converts a journalled multiplexer history into trace events attributed to
/// `container` at `at`. Evictions have no trace-stream counterpart (the
/// simulation's per-container caches are unbounded, like the paper's) and
/// are skipped.
pub fn mux_trace_events(container: ContainerId, at: SimTime, events: &[MuxEvent]) -> Vec<SimEvent> {
    events
        .iter()
        .filter_map(|e| match *e {
            MuxEvent::Hit { key } => Some(EventKind::ClientCacheHit { container, key }),
            MuxEvent::Miss { key } => Some(EventKind::ClientCacheMiss { container, key }),
            MuxEvent::Evicted { .. } => None,
        })
        .map(|kind| SimEvent::new(at, kind))
        .collect()
}

/// Hit/miss counters of one multiplexer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiplexerStats {
    /// Requests served from cache (or by waiting on an in-flight build).
    pub hits: u64,
    /// Requests that actually built the resource.
    pub misses: u64,
}

impl MultiplexerStats {
    /// Total requests.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (0 when no requests yet).
    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests() as f64
        }
    }
}

/// A per-container cache of expensive resources keyed by hashed creation
/// arguments.
///
/// `R` is the resource type (e.g. a storage client). The multiplexer is
/// `Send + Sync` and lock-cheap: the map lock is held only to look up or
/// insert a cell, never during resource construction.
///
/// # Examples
///
/// ```
/// use faasbatch_core::multiplexer::ResourceMultiplexer;
///
/// let mux: ResourceMultiplexer<String> = ResourceMultiplexer::new();
/// let a = mux.get_or_create(&("endpoint", "key"), || "client".to_owned());
/// let b = mux.get_or_create(&("endpoint", "key"), || unreachable!("cached"));
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(mux.stats().misses, 1);
/// assert_eq!(mux.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct ResourceMultiplexer<R> {
    inner: Mutex<Inner<R>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    events: Mutex<Vec<MuxEvent>>,
}

#[derive(Debug)]
struct Cell<R> {
    once: Arc<OnceLock<Arc<R>>>,
    last_used: u64,
}

#[derive(Debug)]
struct Inner<R> {
    cells: HashMap<u64, Cell<R>>,
    tick: u64,
    capacity: Option<usize>,
}

impl<R> Default for ResourceMultiplexer<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> ResourceMultiplexer<R> {
    /// Creates an unbounded multiplexer (the paper's design — container
    /// lifetimes bound the cache naturally).
    pub fn new() -> Self {
        Self::build(None)
    }

    /// Creates a multiplexer that keeps at most `capacity` built resources,
    /// evicting the least recently used beyond that — an extension for
    /// memory-constrained containers caching many distinct configurations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self::build(Some(capacity))
    }

    fn build(capacity: Option<usize>) -> Self {
        ResourceMultiplexer {
            inner: Mutex::new(Inner {
                cells: HashMap::new(),
                tick: 0,
                capacity,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Returns the cached resource for `args`, building it with `build` on
    /// first request. Concurrent requests for the same `args` share one
    /// build (single-flight); requests for different `args` build
    /// concurrently.
    pub fn get_or_create<K: Hash, F: FnOnce() -> R>(&self, args: &K, build: F) -> Arc<R> {
        let key = Self::hash_args(args);
        let cell = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            inner
                .cells
                .entry(key)
                .and_modify(|c| c.last_used = tick)
                .or_insert_with(|| Cell {
                    once: Arc::default(),
                    last_used: tick,
                })
                .once
                .clone()
        };
        // Fast path: already built.
        if let Some(existing) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.events.lock().push(MuxEvent::Hit { key });
            return existing.clone();
        }
        let mut built_here = false;
        let resource = cell
            .get_or_init(|| {
                built_here = true;
                Arc::new(build())
            })
            .clone();
        if built_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.events.lock().push(MuxEvent::Miss { key });
            self.enforce_capacity(key);
        } else {
            // We raced an in-flight build and got its result — a hit.
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.events.lock().push(MuxEvent::Hit { key });
        }
        resource
    }

    /// Evicts least-recently-used built entries beyond the capacity, never
    /// the just-built `protect` key.
    fn enforce_capacity(&self, protect: u64) {
        let mut inner = self.inner.lock();
        let Some(capacity) = inner.capacity else {
            return;
        };
        loop {
            let built = inner
                .cells
                .iter()
                .filter(|(_, c)| c.once.get().is_some())
                .count();
            if built <= capacity {
                return;
            }
            let victim = inner
                .cells
                .iter()
                .filter(|(&k, c)| k != protect && c.once.get().is_some())
                .min_by_key(|(_, c)| c.last_used)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    inner.cells.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.events.lock().push(MuxEvent::Evicted { key: k });
                }
                None => return,
            }
        }
    }

    /// Looks up without building.
    pub fn get<K: Hash>(&self, args: &K) -> Option<Arc<R>> {
        let key = Self::hash_args(args);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.cells.get_mut(&key).and_then(|cell| {
            cell.last_used = tick;
            cell.once.get().cloned()
        })
    }

    /// Number of cached (fully built) resources.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .cells
            .values()
            .filter(|c| c.once.get().is_some())
            .count()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> MultiplexerStats {
        MultiplexerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of LRU evictions performed (bounded caches only).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drains the operation journal, oldest first. Ordering between threads
    /// follows the cache's own observation order; totals always agree with
    /// [`stats`](Self::stats) and [`evictions`](Self::evictions) once all
    /// requests have returned.
    pub fn take_events(&self) -> Vec<MuxEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// The hashed key this multiplexer uses for `args` — lets callers
    /// correlate journal entries with the arguments that produced them.
    pub fn key_of<K: Hash>(args: &K) -> u64 {
        Self::hash_args(args)
    }

    /// Drops every cached resource (container teardown).
    pub fn clear(&self) {
        self.inner.lock().cells.clear();
    }

    fn hash_args<K: Hash>(args: &K) -> u64 {
        let mut h = DefaultHasher::new();
        args.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn caches_by_args() {
        let mux: ResourceMultiplexer<u32> = ResourceMultiplexer::new();
        let a = mux.get_or_create(&"x", || 1);
        let b = mux.get_or_create(&"y", || 2);
        let a2 = mux.get_or_create(&"x", || unreachable!());
        assert_eq!(*a, 1);
        assert_eq!(*b, 2);
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(mux.len(), 2);
        assert_eq!(mux.stats(), MultiplexerStats { hits: 1, misses: 2 });
    }

    #[test]
    fn get_does_not_build() {
        let mux: ResourceMultiplexer<u32> = ResourceMultiplexer::new();
        assert!(mux.get(&"x").is_none());
        mux.get_or_create(&"x", || 7);
        assert_eq!(*mux.get(&"x").unwrap(), 7);
    }

    #[test]
    fn single_flight_under_contention() {
        let mux: Arc<ResourceMultiplexer<u64>> = Arc::new(ResourceMultiplexer::new());
        let builds = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let mux = mux.clone();
                let builds = builds.clone();
                scope.spawn(move || {
                    let v = mux.get_or_create(&"shared", || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Make the build slow enough that threads really race.
                        std::thread::sleep(Duration::from_millis(20));
                        42
                    });
                    assert_eq!(*v, 42);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build");
        let stats = mux.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 15);
    }

    #[test]
    fn distinct_args_build_concurrently() {
        let mux: Arc<ResourceMultiplexer<usize>> = Arc::new(ResourceMultiplexer::new());
        std::thread::scope(|scope| {
            for i in 0..8usize {
                let mux = mux.clone();
                scope.spawn(move || {
                    let v = mux.get_or_create(&i, || {
                        std::thread::sleep(Duration::from_millis(5));
                        i * 10
                    });
                    assert_eq!(*v, i * 10);
                });
            }
        });
        assert_eq!(mux.len(), 8);
        assert_eq!(mux.stats().misses, 8);
    }

    #[test]
    fn clear_resets_cache_but_not_stats() {
        let mux: ResourceMultiplexer<u32> = ResourceMultiplexer::new();
        mux.get_or_create(&"x", || 1);
        mux.clear();
        assert!(mux.is_empty());
        assert_eq!(mux.stats().misses, 1);
        // Rebuild after clear is a miss again.
        mux.get_or_create(&"x", || 1);
        assert_eq!(mux.stats().misses, 2);
    }

    #[test]
    fn bounded_cache_evicts_lru() {
        let mux: ResourceMultiplexer<u32> = ResourceMultiplexer::with_capacity(2);
        mux.get_or_create(&"a", || 1);
        mux.get_or_create(&"b", || 2);
        // Touch "a" so "b" becomes the LRU victim.
        mux.get_or_create(&"a", || unreachable!());
        mux.get_or_create(&"c", || 3);
        assert_eq!(mux.len(), 2);
        assert_eq!(mux.evictions(), 1);
        assert!(mux.get(&"a").is_some(), "recently used survives");
        assert!(mux.get(&"b").is_none(), "LRU evicted");
        assert!(mux.get(&"c").is_some());
        // Re-requesting the victim rebuilds it.
        let rebuilt = mux.get_or_create(&"b", || 22);
        assert_eq!(*rebuilt, 22);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mux: ResourceMultiplexer<usize> = ResourceMultiplexer::new();
        for i in 0..100usize {
            mux.get_or_create(&i, move || i);
        }
        assert_eq!(mux.len(), 100);
        assert_eq!(mux.evictions(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: ResourceMultiplexer<u32> = ResourceMultiplexer::with_capacity(0);
    }

    #[test]
    fn lru_eviction_order_is_journalled() {
        type Mux = ResourceMultiplexer<u32>;
        let mux: Mux = ResourceMultiplexer::with_capacity(2);
        mux.get_or_create(&"a", || 1);
        mux.get_or_create(&"b", || 2);
        // Touch "a", then overflow twice: victims must be exactly "b" (the
        // LRU at the first overflow) then "a" (LRU at the second).
        mux.get_or_create(&"a", || unreachable!());
        mux.get_or_create(&"c", || 3);
        mux.get_or_create(&"d", || 4);
        let evicted: Vec<u64> = mux
            .take_events()
            .into_iter()
            .filter_map(|e| match e {
                MuxEvent::Evicted { key } => Some(key),
                _ => None,
            })
            .collect();
        assert_eq!(evicted, vec![Mux::key_of(&"b"), Mux::key_of(&"a")]);
        assert_eq!(mux.evictions(), 2);
    }

    #[test]
    fn race_stats_agree_with_event_stream() {
        use faasbatch_metrics::events::{CounterSink, TraceSink};
        use faasbatch_simcore::time::SimTime;

        let mux: Arc<ResourceMultiplexer<u64>> = Arc::new(ResourceMultiplexer::new());
        // 4 distinct keys × 8 racing threads each: one build per key, the
        // rest hits (either from cache or by waiting on the in-flight build).
        std::thread::scope(|scope| {
            for key in 0..4u64 {
                for _ in 0..8 {
                    let mux = mux.clone();
                    scope.spawn(move || {
                        let v = mux.get_or_create(&key, move || {
                            std::thread::sleep(Duration::from_millis(5));
                            key * 10
                        });
                        assert_eq!(*v, key * 10);
                    });
                }
            }
        });
        let stats = mux.stats();
        assert_eq!(stats.misses, 4, "single-flight: one build per key");
        assert_eq!(stats.hits, 28);

        // The journal must tell the same story, and survive conversion into
        // the typed trace stream.
        let journal = mux.take_events();
        let journal_hits = journal
            .iter()
            .filter(|e| matches!(e, MuxEvent::Hit { .. }))
            .count() as u64;
        let journal_misses = journal
            .iter()
            .filter(|e| matches!(e, MuxEvent::Miss { .. }))
            .count() as u64;
        assert_eq!(journal_hits, stats.hits);
        assert_eq!(journal_misses, stats.misses);

        let sim_events = mux_trace_events(
            faasbatch_container::ids::ContainerId::new(7),
            SimTime::ZERO,
            &journal,
        );
        let mut counter = CounterSink::new();
        for e in &sim_events {
            counter.record(e);
        }
        assert_eq!(counter.count("ClientCacheHit"), stats.hits);
        assert_eq!(counter.count("ClientCacheMiss"), stats.misses);
        assert_eq!(counter.total(), stats.requests());
    }

    #[test]
    fn eviction_has_no_trace_counterpart() {
        use faasbatch_simcore::time::SimTime;
        let events = [
            MuxEvent::Miss { key: 1 },
            MuxEvent::Evicted { key: 1 },
            MuxEvent::Hit { key: 2 },
        ];
        let sim = mux_trace_events(
            faasbatch_container::ids::ContainerId::new(0),
            SimTime::ZERO,
            &events,
        );
        assert_eq!(sim.len(), 2);
    }

    #[test]
    fn hit_rate_math() {
        let s = MultiplexerStats { hits: 3, misses: 1 };
        assert_eq!(s.requests(), 4);
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(MultiplexerStats::default().hit_rate(), 0.0);
    }
}
