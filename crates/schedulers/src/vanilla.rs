//! The Vanilla baseline: one container per invocation.
//!
//! This is "the invocation model adopted by the vast majority of serverless
//! computing frameworks: launching an isolated environment (i.e., a
//! container) for executing each function invocation" (§IV). Warm containers
//! are reused when one happens to be free — which is why the paper measures
//! ≈1.5 invocations per container rather than exactly 1 — but concurrent
//! invocations always fan out across containers.

use crate::policy::{Ctx, DispatchRequest, ExecMode, Policy};
use faasbatch_trace::workload::Invocation;

/// One-container-per-invocation scheduling.
///
/// # Examples
///
/// ```
/// use faasbatch_schedulers::vanilla::Vanilla;
/// use faasbatch_schedulers::policy::Policy;
///
/// assert_eq!(Vanilla::new().name(), "vanilla");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Vanilla {
    _private: (),
}

impl Vanilla {
    /// Creates the policy.
    pub fn new() -> Self {
        Vanilla::default()
    }
}

impl Policy for Vanilla {
    fn name(&self) -> String {
        "vanilla".to_owned()
    }

    fn on_arrival(&mut self, ctx: &mut Ctx<'_>, invocation: &Invocation) {
        // Dispatch immediately: a batch of exactly one invocation.
        ctx.dispatch(DispatchRequest::new(
            vec![invocation.clone()],
            ExecMode::Serial,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::harness::run_simulation;
    use faasbatch_simcore::rng::DetRng;
    use faasbatch_simcore::time::SimDuration;
    use faasbatch_trace::workload::{cpu_workload, WorkloadConfig};

    #[test]
    fn completes_small_cpu_workload() {
        let w = cpu_workload(
            &DetRng::new(1),
            &WorkloadConfig {
                total: 40,
                span: SimDuration::from_secs(10),
                functions: 3,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(
            Box::new(Vanilla::new()),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        assert_eq!(report.records.len(), 40);
        assert!(report.inconsistencies().is_empty());
        assert_eq!(report.scheduler, "vanilla");
        // No batching ⇒ no queuing latency.
        assert!(report.records.iter().all(|r| r.latency.queuing.is_zero()));
    }

    #[test]
    fn provisions_many_containers_under_burst() {
        // Everything arrives at once: no warm reuse is possible, so Vanilla
        // must start one container per invocation.
        let w = cpu_workload(
            &DetRng::new(2),
            &WorkloadConfig {
                total: 30,
                span: SimDuration::from_millis(10),
                functions: 1,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(
            Box::new(Vanilla::new()),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        assert_eq!(report.provisioned_containers, 30);
        assert_eq!(report.cold_fraction(), 1.0);
    }

    #[test]
    fn reuses_warm_containers_when_spread_out() {
        let w = cpu_workload(
            &DetRng::new(3),
            &WorkloadConfig {
                total: 30,
                span: SimDuration::from_secs(60),
                functions: 1,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(
            Box::new(Vanilla::new()),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        assert!(
            report.provisioned_containers < 30,
            "expected warm reuse, provisioned {}",
            report.provisioned_containers
        );
        assert!(report.warm_hits > 0);
    }

    #[test]
    fn run_is_deterministic() {
        let w = cpu_workload(
            &DetRng::new(4),
            &WorkloadConfig {
                total: 25,
                span: SimDuration::from_secs(5),
                functions: 2,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        );
        let a = run_simulation(
            Box::new(Vanilla::new()),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        let b = run_simulation(
            Box::new(Vanilla::new()),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        assert_eq!(a, b);
    }
}
