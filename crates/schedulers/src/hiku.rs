//! Hiku: pull-based, worker-initiated scheduling.
//!
//! Hiku (Akbari & Hauswirth, arXiv:2502.15534) inverts the usual
//! push model: the platform never assigns work to a busy worker.
//! Instead, invocations wait in one shared queue and an idle worker
//! *pulls* the next invocation the moment it frees up. The pull step
//! prefers invocations whose function already has a warm container
//! available (warm-affinity), falling back to strict FIFO when nothing
//! queued is warm — late binding plus locality in one rule.
//!
//! In this harness a "worker" is a pull slot: a unit of concurrent
//! dispatch capacity. Each pulled invocation runs as a batch of one,
//! and the slot is returned when the batch completes
//! ([`Policy::on_batch_done`]). Queue time spent waiting for a slot is
//! charged to the window-wait attribution phase (arrival →
//! dispatch decision), so `trace-diff` can show exactly where pulling
//! wins or loses against push-based batching.

use crate::policy::{Ctx, DispatchRequest, ExecMode, Policy};
use faasbatch_container::ids::ContainerId;
use faasbatch_trace::workload::Invocation;
use std::collections::VecDeque;

/// Pull-based scheduling with warm-affinity pull preference.
///
/// # Examples
///
/// ```
/// use faasbatch_schedulers::hiku::Hiku;
/// use faasbatch_schedulers::policy::Policy;
///
/// assert_eq!(Hiku::new().name(), "hiku");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Hiku {
    /// Configured pull-slot capacity; 0 means derive from the machine's
    /// core count at [`Policy::on_start`].
    slots: usize,
    /// Pull slots currently idle (free workers).
    idle: usize,
    /// Shared queue of invocations not yet pulled, in arrival order.
    queue: VecDeque<Invocation>,
}

impl Hiku {
    /// Creates the policy with one pull slot per machine core (resolved
    /// from [`crate::config::SimConfig::cores`] when the run starts).
    pub fn new() -> Self {
        Hiku::default()
    }

    /// Creates the policy with exactly `slots` pull slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_capacity(slots: usize) -> Self {
        assert!(slots > 0, "Hiku needs at least one pull slot");
        Hiku {
            slots,
            idle: 0,
            queue: VecDeque::new(),
        }
    }

    /// An idle worker pulls work: prefer the oldest queued invocation
    /// whose function has a warm container free, else the queue head.
    fn pull(&mut self, ctx: &mut Ctx<'_>) {
        while self.idle > 0 && !self.queue.is_empty() {
            let pos = self
                .queue
                .iter()
                .position(|inv| ctx.warm_count(inv.function) > 0)
                .unwrap_or(0);
            let invocation = self
                .queue
                .remove(pos)
                .expect("position came from this queue");
            self.idle -= 1;
            ctx.dispatch(DispatchRequest::new(vec![invocation], ExecMode::Serial));
        }
    }
}

impl Policy for Hiku {
    fn name(&self) -> String {
        "hiku".to_owned()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.slots == 0 {
            self.slots = (ctx.config().cores.floor() as usize).max(1);
        }
        self.idle = self.slots;
    }

    fn on_arrival(&mut self, ctx: &mut Ctx<'_>, invocation: &Invocation) {
        self.queue.push_back(invocation.clone());
        self.pull(ctx);
    }

    fn on_batch_done(&mut self, ctx: &mut Ctx<'_>, _container: ContainerId) {
        // The worker that ran this batch is free again and pulls.
        self.idle += 1;
        self.pull(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::harness::run_simulation;
    use faasbatch_container::ids::InvocationId;
    use faasbatch_simcore::rng::DetRng;
    use faasbatch_simcore::time::{SimDuration, SimTime};
    use faasbatch_trace::function::{FunctionKind, FunctionRegistry};
    use faasbatch_trace::workload::{cpu_workload, Workload, WorkloadConfig};

    #[test]
    fn completes_small_cpu_workload() {
        let w = cpu_workload(
            &DetRng::new(1),
            &WorkloadConfig {
                total: 40,
                span: SimDuration::from_secs(10),
                functions: 3,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(Box::new(Hiku::new()), &w, SimConfig::default(), "cpu", None);
        assert_eq!(report.records.len(), 40);
        assert!(report.inconsistencies().is_empty());
        assert_eq!(report.scheduler, "hiku");
    }

    #[test]
    fn run_is_deterministic() {
        let w = cpu_workload(
            &DetRng::new(4),
            &WorkloadConfig {
                total: 25,
                span: SimDuration::from_secs(5),
                functions: 2,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        );
        let a = run_simulation(Box::new(Hiku::new()), &w, SimConfig::default(), "cpu", None);
        let b = run_simulation(Box::new(Hiku::new()), &w, SimConfig::default(), "cpu", None);
        assert_eq!(a, b);
    }

    #[test]
    fn capacity_bounds_concurrent_containers() {
        // Everything arrives at once; with 4 pull slots at most 4 batches
        // are ever in flight, so at most 4 containers exist.
        let w = cpu_workload(
            &DetRng::new(2),
            &WorkloadConfig {
                total: 30,
                span: SimDuration::from_millis(10),
                functions: 1,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(
            Box::new(Hiku::with_capacity(4)),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        assert_eq!(report.records.len(), 30);
        assert!(
            report.provisioned_containers <= 4,
            "4 pull slots provisioned {} containers",
            report.provisioned_containers
        );
    }

    #[test]
    fn pull_prefers_warm_function() {
        // One pull slot. A long invocation of function A runs first; while
        // it runs, B1 then A2 queue up (in that arrival order). When A's
        // container frees, the pull prefers A2 (warm) over the older B1.
        let mut registry = FunctionRegistry::new();
        let fa = registry.register("fa", FunctionKind::Cpu { fib_n: 30 });
        let fb = registry.register("fb", FunctionKind::Cpu { fib_n: 30 });
        let invocations = vec![
            Invocation {
                id: InvocationId::new(0),
                function: fa,
                arrival: SimTime::ZERO,
                work: SimDuration::from_millis(500),
            },
            Invocation {
                id: InvocationId::new(1),
                function: fb,
                arrival: SimTime::from_millis(10),
                work: SimDuration::from_millis(50),
            },
            Invocation {
                id: InvocationId::new(2),
                function: fa,
                arrival: SimTime::from_millis(20),
                work: SimDuration::from_millis(50),
            },
        ];
        let w = Workload::new(registry, invocations);
        let report = run_simulation(
            Box::new(Hiku::with_capacity(1)),
            &w,
            SimConfig::default(),
            "affinity",
            None,
        );
        assert_eq!(report.records.len(), 3);
        let rec = |id: u64| {
            report
                .records
                .iter()
                .find(|r| r.id == InvocationId::new(id))
                .expect("record exists")
        };
        // A2 jumped the queue ahead of B1 and was served warm.
        assert!(
            rec(2).completion < rec(1).completion,
            "warm-affinity pull should finish A2 before B1"
        );
        assert!(!rec(2).cold, "A2 should reuse A1's warm container");
    }
}
