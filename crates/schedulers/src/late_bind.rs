//! Core-granular late binding.
//!
//! Kaffes et al. (arXiv:2111.07226) argue serverless schedulers should
//! operate at *core* granularity and bind work to cores as late as
//! possible: instead of queuing invocations behind a chosen core (or
//! container) at arrival, hold them centrally and commit an invocation
//! to a core only at the instant that core is actually free. Early
//! binding gambles on a queue staying short; late binding never loses
//! that bet, eliminating head-of-line blocking behind long invocations.
//!
//! Here each user-visible core is a run slot. Queued invocations are
//! held in one central FIFO; when a core frees up, the head invocation
//! binds to it and runs as a batch of one pinned to a single core
//! (`cpu_limit = 1.0`), so execution never experiences cross-container
//! CPU contention — the cost shows up as binding wait (the window-wait
//! attribution phase) instead, which is exactly the trade `trace-diff`
//! is built to expose.

use crate::policy::{Ctx, DispatchRequest, ExecMode, Policy};
use faasbatch_container::ids::ContainerId;
use faasbatch_trace::workload::Invocation;
use std::collections::VecDeque;

/// Per-core late binding: invocations bind to a core only when it is free.
///
/// # Examples
///
/// ```
/// use faasbatch_schedulers::late_bind::CoreLateBind;
/// use faasbatch_schedulers::policy::Policy;
///
/// assert_eq!(CoreLateBind::new().name(), "core-late-bind");
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoreLateBind {
    /// Configured core count; 0 means derive the user-visible cores
    /// (machine cores minus daemon reservation) at [`Policy::on_start`].
    cores: usize,
    /// Cores currently free.
    free: usize,
    /// Centrally held invocations not yet bound to any core.
    queue: VecDeque<Invocation>,
}

impl CoreLateBind {
    /// Creates the policy over every user-visible core (machine cores
    /// minus [`crate::config::SimConfig::daemon_cores`], resolved when
    /// the run starts).
    pub fn new() -> Self {
        CoreLateBind::default()
    }

    /// Creates the policy over exactly `cores` run slots.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_cores(cores: usize) -> Self {
        assert!(cores > 0, "core-late-bind needs at least one core");
        CoreLateBind {
            cores,
            free: 0,
            queue: VecDeque::new(),
        }
    }

    /// Binds queued invocations to free cores, oldest first. Each bound
    /// invocation is pinned to exactly one core.
    fn bind(&mut self, ctx: &mut Ctx<'_>) {
        while self.free > 0 {
            let Some(invocation) = self.queue.pop_front() else {
                return;
            };
            self.free -= 1;
            let mut request = DispatchRequest::new(vec![invocation], ExecMode::Serial);
            request.cpu_limit = Some(1.0);
            ctx.dispatch(request);
        }
    }
}

impl Policy for CoreLateBind {
    fn name(&self) -> String {
        "core-late-bind".to_owned()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.cores == 0 {
            let cfg = ctx.config();
            self.cores = ((cfg.cores - cfg.daemon_cores).floor() as usize).max(1);
        }
        self.free = self.cores;
    }

    fn on_arrival(&mut self, ctx: &mut Ctx<'_>, invocation: &Invocation) {
        self.queue.push_back(invocation.clone());
        self.bind(ctx);
    }

    fn on_batch_done(&mut self, ctx: &mut Ctx<'_>, _container: ContainerId) {
        // The core this batch occupied is free; bind the next invocation.
        self.free += 1;
        self.bind(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::harness::run_simulation;
    use faasbatch_simcore::rng::DetRng;
    use faasbatch_simcore::time::SimDuration;
    use faasbatch_trace::workload::{cpu_workload, WorkloadConfig};

    #[test]
    fn completes_small_cpu_workload() {
        let w = cpu_workload(
            &DetRng::new(1),
            &WorkloadConfig {
                total: 40,
                span: SimDuration::from_secs(10),
                functions: 3,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(
            Box::new(CoreLateBind::new()),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        assert_eq!(report.records.len(), 40);
        assert!(report.inconsistencies().is_empty());
        assert_eq!(report.scheduler, "core-late-bind");
    }

    #[test]
    fn run_is_deterministic() {
        let w = cpu_workload(
            &DetRng::new(4),
            &WorkloadConfig {
                total: 25,
                span: SimDuration::from_secs(5),
                functions: 2,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        );
        let a = run_simulation(
            Box::new(CoreLateBind::new()),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        let b = run_simulation(
            Box::new(CoreLateBind::new()),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn never_runs_more_batches_than_cores() {
        // Everything arrives at once; with 2 cores at most 2 batches are
        // in flight, so at most 2 containers are ever provisioned.
        let w = cpu_workload(
            &DetRng::new(2),
            &WorkloadConfig {
                total: 20,
                span: SimDuration::from_millis(10),
                functions: 1,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(
            Box::new(CoreLateBind::with_cores(2)),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        assert_eq!(report.records.len(), 20);
        assert!(
            report.provisioned_containers <= 2,
            "2 cores provisioned {} containers",
            report.provisioned_containers
        );
    }

    #[test]
    fn binds_in_arrival_order() {
        // Single core: strict FIFO binding means completions follow
        // arrival order exactly.
        let w = cpu_workload(
            &DetRng::new(7),
            &WorkloadConfig {
                total: 12,
                span: SimDuration::from_millis(50),
                functions: 2,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(
            Box::new(CoreLateBind::with_cores(1)),
            &w,
            SimConfig::default(),
            "cpu",
            None,
        );
        let mut records = report.records.clone();
        records.sort_by_key(|r| r.completion);
        let ids: Vec<_> = records.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "single-core late binding must be FIFO");
    }
}
