//! Shared simulation configuration.
//!
//! Every scheduler runs against the same [`SimConfig`], so cost constants
//! (cold start, daemon capacity, client creation) are identical across
//! policies — the comparison isolates scheduling decisions, exactly as the
//! paper's single-worker testbed does.

use faasbatch_container::snapshot::SnapshotConfig;
use faasbatch_container::spec::ColdStartModel;
use faasbatch_simcore::time::SimDuration;
use faasbatch_storage::cost::ClientCostModel;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated worker node and platform cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Host cores (paper: 32-vCPU worker VM).
    pub cores: f64,
    /// Cold-start phase costs.
    pub cold_start: ColdStartModel,
    /// Keep-alive TTL for idle containers.
    pub keep_alive: SimDuration,
    /// Cores available to the container daemon — launches serialize behind
    /// this budget, which is what makes per-invocation container provisioning
    /// blow up scheduling latency under bursts (Fig. 11(a)/12(a)).
    pub daemon_cores: f64,
    /// Daemon CPU work to process one container-launch request.
    pub container_launch_work: SimDuration,
    /// Daemon CPU work to route a dispatch to an already-warm container.
    pub warm_dispatch_work: SimDuration,
    /// Storage-client creation / operation cost model (I/O workloads).
    pub client_cost: ClientCostModel,
    /// Base memory of one container (runtime + imports).
    pub container_base_memory: u64,
    /// Host resource sampling period (paper: 1 s).
    pub sample_period: SimDuration,
    /// Snapshot-restore tier configuration. Defaults to disabled
    /// (capacity 0), which leaves every pre-0.9 run byte-identical.
    #[serde(default)]
    pub snapshot: SnapshotConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 32.0,
            cold_start: ColdStartModel::default(),
            keep_alive: SimDuration::from_secs(600),
            daemon_cores: 2.0,
            container_launch_work: SimDuration::from_millis(100),
            warm_dispatch_work: SimDuration::from_millis(2),
            client_cost: ClientCostModel::default(),
            container_base_memory: 50 << 20,
            sample_period: SimDuration::from_secs(1),
            snapshot: SnapshotConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert_eq!(c.cores, 32.0);
        assert!(c.daemon_cores < c.cores);
        assert!(c.warm_dispatch_work < c.container_launch_work);
        assert!(!c.sample_period.is_zero());
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let c = SimConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
