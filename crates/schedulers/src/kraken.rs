//! The Kraken baseline (slack-aware batching, HotCloud/SoCC lineage).
//!
//! Kraken "utilizes the notion of slack to allow invocations to complete in
//! advance of the provided SLOs while minimizing the number of provisioned
//! containers" (§IV). Following the paper's porting notes:
//!
//! * each function's SLO is the **98th-percentile latency observed under
//!   Vanilla** (not the original fixed 1000 ms);
//! * workload prediction is **oracle-accurate** — the paper replaces
//!   Kraken's EWMA with the actual invocation pattern, so our port batches
//!   the actual arrivals of each scheduling round;
//! * batched invocations execute **serially** inside their container, which
//!   is where Kraken's queuing latency (the `Exec+Queue` series of
//!   Fig. 11(c)/12(c)) comes from.

use crate::policy::{Ctx, DispatchRequest, ExecMode, Policy};
use faasbatch_container::ids::FunctionId;
use faasbatch_metrics::report::RunReport;
use faasbatch_simcore::time::SimDuration;
use faasbatch_trace::workload::{Invocation, Workload};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-round, per-function arrival counts known ahead of time — the
/// "100 %-accurate predicted workload" of the paper's Kraken port.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OraclePattern {
    rounds: Vec<BTreeMap<FunctionId, usize>>,
}

impl OraclePattern {
    /// Collects the true per-round counts of `workload` for round length
    /// `window` (the paper gathers them from the Vanilla run's pattern).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn from_workload(workload: &Workload, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        let mut rounds: Vec<BTreeMap<FunctionId, usize>> = Vec::new();
        for inv in workload.invocations() {
            let r = (inv.arrival.as_micros() / window.as_micros()) as usize;
            if rounds.len() <= r {
                rounds.resize_with(r + 1, BTreeMap::new);
            }
            *rounds[r].entry(inv.function).or_insert(0) += 1;
        }
        OraclePattern { rounds }
    }

    /// Counts expected in round `r` (empty past the horizon).
    pub fn round(&self, r: usize) -> Option<&BTreeMap<FunctionId, usize>> {
        self.rounds.get(r)
    }
}

/// How Kraken forecasts the coming load for container provisioning.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum KrakenPrediction {
    /// No pre-provisioning: containers are launched lazily at dispatch (the
    /// default used by the figure harnesses).
    #[default]
    Lazy,
    /// Oracle: pre-warm from the true future arrival counts — the paper's
    /// "accuracy of the predicted workload set to 100 %".
    Oracle(OraclePattern),
    /// The original Kraken's exponentially weighted moving average over the
    /// observed per-round counts: `p ← α·actual + (1−α)·p`.
    Ewma {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
}

/// Per-function calibration inputs for Kraken (from a Vanilla run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KrakenCalibration {
    /// Per-function SLO: p98 end-to-end latency under Vanilla.
    pub slo: BTreeMap<FunctionId, SimDuration>,
    /// Per-function mean execution time under Vanilla (batch-packing
    /// estimate).
    pub mean_exec: BTreeMap<FunctionId, SimDuration>,
    /// Fallback SLO for unseen functions (original Kraken used 1000 ms).
    pub default_slo: SimDuration,
    /// Fallback execution estimate for unseen functions.
    pub default_exec: SimDuration,
}

impl Default for KrakenCalibration {
    /// No per-function data; the original Kraken's fixed fallbacks (1000 ms
    /// SLO, 100 ms execution estimate).
    fn default() -> Self {
        KrakenCalibration {
            slo: BTreeMap::new(),
            mean_exec: BTreeMap::new(),
            default_slo: SimDuration::from_millis(1_000),
            default_exec: SimDuration::from_millis(100),
        }
    }
}

impl KrakenCalibration {
    /// Builds the calibration from a Vanilla [`RunReport`], per the paper's
    /// fair-comparison methodology.
    pub fn from_vanilla(report: &RunReport) -> Self {
        let mut by_function: BTreeMap<FunctionId, Vec<SimDuration>> = BTreeMap::new();
        let mut exec_by_function: BTreeMap<FunctionId, Vec<SimDuration>> = BTreeMap::new();
        for r in &report.records {
            by_function
                .entry(r.function)
                .or_default()
                .push(r.latency.end_to_end());
            exec_by_function
                .entry(r.function)
                .or_default()
                .push(r.latency.execution);
        }
        let slo = by_function
            .into_iter()
            .map(|(f, samples)| {
                let cdf = faasbatch_metrics::stats::Cdf::from_samples(samples);
                (f, cdf.quantile(0.98))
            })
            .collect();
        let mean_exec = exec_by_function
            .into_iter()
            .map(|(f, samples)| {
                let cdf = faasbatch_metrics::stats::Cdf::from_samples(samples);
                (f, cdf.mean())
            })
            .collect();
        KrakenCalibration {
            slo,
            mean_exec,
            ..KrakenCalibration::default()
        }
    }

    /// SLO for `function` (falls back to `default_slo`).
    pub fn slo_for(&self, function: FunctionId) -> SimDuration {
        self.slo.get(&function).copied().unwrap_or(self.default_slo)
    }

    /// Execution estimate for `function` (falls back to `default_exec`).
    pub fn exec_estimate(&self, function: FunctionId) -> SimDuration {
        self.mean_exec
            .get(&function)
            .copied()
            .unwrap_or(self.default_exec)
    }
}

/// Kraken: SLO/slack-driven serial batching with optional EWMA/oracle
/// container pre-provisioning.
#[derive(Debug, Clone)]
pub struct Kraken {
    calibration: KrakenCalibration,
    /// Scheduling-round length (the batch window).
    window: SimDuration,
    /// Invocations waiting for the next round, per function (BTreeMap for
    /// deterministic round processing).
    queued: BTreeMap<FunctionId, Vec<Invocation>>,
    /// Load-forecasting mode for pre-provisioning.
    prediction: KrakenPrediction,
    /// Rounds completed so far.
    round: usize,
    /// EWMA state per function (counts per round).
    ewma: BTreeMap<FunctionId, f64>,
    /// Outstanding pre-warms: (maturity round, function, count).
    prewarming: Vec<(usize, FunctionId, usize)>,
}

impl Kraken {
    /// Round-timer token.
    const TIMER: u64 = 0;

    /// Creates a Kraken with the given calibration and scheduling window.
    pub fn new(calibration: KrakenCalibration, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        Kraken {
            calibration,
            window,
            queued: BTreeMap::new(),
            prediction: KrakenPrediction::Lazy,
            round: 0,
            ewma: BTreeMap::new(),
            prewarming: Vec::new(),
        }
    }

    /// Selects the load-forecasting mode (default: [`KrakenPrediction::Lazy`]).
    pub fn with_prediction(mut self, prediction: KrakenPrediction) -> Self {
        if let KrakenPrediction::Ewma { alpha } = prediction {
            assert!(
                alpha > 0.0 && alpha <= 1.0,
                "EWMA alpha must be in (0, 1]: {alpha}"
            );
        }
        self.prediction = prediction;
        self
    }

    /// Test-only access to the slack packer (kept out of the public API
    /// surface; used by the workspace's property tests).
    #[doc(hidden)]
    pub fn pack_for_test(
        &self,
        now: faasbatch_simcore::time::SimTime,
        function: FunctionId,
        queue: Vec<Invocation>,
        warm_available: usize,
        cold_estimate: SimDuration,
    ) -> Vec<Vec<Invocation>> {
        self.pack(now, function, queue, warm_available, cold_estimate)
    }

    /// Maximum batch size meeting a function's SLO if dispatched promptly.
    fn batch_cap(&self, function: FunctionId) -> usize {
        let slo = self.calibration.slo_for(function).as_millis_f64();
        let d = self
            .calibration
            .exec_estimate(function)
            .as_millis_f64()
            .max(1.0);
        ((slo / d).floor() as usize).clamp(1, 64)
    }

    /// Pre-warms containers for the forecast load `lead` rounds out.
    fn provision_ahead(&mut self, ctx: &mut Ctx<'_>, actual: &BTreeMap<FunctionId, usize>) {
        // Lead time: how many rounds a launch takes to become warm.
        let cold = ctx.config().cold_start.clone();
        let cold_total = cold.image_latency() + cold.cpu_work();
        let lead = (cold_total.as_micros() / self.window.as_micros()).max(1) as usize + 1;
        // Forecast per function.
        let forecast: BTreeMap<FunctionId, usize> = match &mut self.prediction {
            KrakenPrediction::Lazy => return,
            KrakenPrediction::Oracle(pattern) => pattern
                .round(self.round + lead)
                .cloned()
                .unwrap_or_default(),
            KrakenPrediction::Ewma { alpha } => {
                let a = *alpha;
                // Update with this round's actuals (functions with no
                // arrivals decay toward zero).
                for (&f, count) in actual {
                    let e = self.ewma.entry(f).or_insert(0.0);
                    *e = a * *count as f64 + (1.0 - a) * *e;
                }
                for (f, e) in self.ewma.iter_mut() {
                    if !actual.contains_key(f) {
                        *e *= 1.0 - a;
                    }
                }
                self.ewma
                    .iter()
                    .map(|(&f, &e)| (f, e.round() as usize))
                    .filter(|&(_, c)| c > 0)
                    .collect()
            }
        };
        // Purge matured pre-warms.
        let round = self.round;
        self.prewarming.retain(|&(mature, _, _)| mature > round);
        for (f, count) in forecast {
            let cap = self.batch_cap(f);
            let needed = count.div_ceil(cap);
            let pending: usize = self
                .prewarming
                .iter()
                .filter(|&&(_, pf, _)| pf == f)
                .map(|&(_, _, c)| c)
                .sum();
            let have = ctx.warm_count(f) + pending;
            let deficit = needed.saturating_sub(have);
            if deficit > 0 {
                ctx.prewarm(f, deficit);
                self.prewarming.push((round + lead, f, deficit));
            }
        }
    }

    /// Creates a Kraken with the original paper's fixed defaults (1000 ms
    /// SLO, 100 ms execution estimate) — used when no Vanilla calibration is
    /// available.
    pub fn with_defaults(window: SimDuration) -> Self {
        Kraken::new(KrakenCalibration::default(), window)
    }

    /// Packs one function's queued invocations into serial batches such that
    /// every member's *predicted* completion meets its SLO deadline.
    fn pack(
        &self,
        now: faasbatch_simcore::time::SimTime,
        function: FunctionId,
        mut queue: Vec<Invocation>,
        warm_available: usize,
        cold_estimate: SimDuration,
    ) -> Vec<Vec<Invocation>> {
        queue.sort_by_key(|i| i.arrival);
        let d = self.calibration.exec_estimate(function);
        let slo = self.calibration.slo_for(function);
        let mut batches: Vec<Vec<Invocation>> = Vec::new();
        for inv in queue {
            let deadline = inv.arrival + slo;
            let n_batches = batches.len();
            let appended = if let Some(batch) = batches.last_mut() {
                // Start estimate for this batch: warm containers dispatch
                // immediately; extra batches pay a cold start.
                let cold = n_batches > warm_available;
                let start = if cold { now + cold_estimate } else { now };
                let finish = start + d * (batch.len() as u64 + 1);
                if finish <= deadline {
                    batch.push(inv.clone());
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if !appended {
                batches.push(vec![inv]);
            }
        }
        batches
    }
}

impl Policy for Kraken {
    fn name(&self) -> String {
        "kraken".to_owned()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.window, Self::TIMER);
    }

    fn on_arrival(&mut self, _ctx: &mut Ctx<'_>, invocation: &Invocation) {
        self.queued
            .entry(invocation.function)
            .or_default()
            .push(invocation.clone());
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let now = ctx.now();
        let cold = ctx.config().cold_start.clone();
        let cold_estimate = cold.image_latency() + cold.cpu_work();
        let queued = std::mem::take(&mut self.queued);
        let actual: BTreeMap<FunctionId, usize> =
            queued.iter().map(|(&f, q)| (f, q.len())).collect();
        for (function, queue) in queued {
            let warm = ctx.warm_count(function);
            let batches = self.pack(now, function, queue, warm, cold_estimate);
            for batch in batches {
                ctx.dispatch(DispatchRequest::new(batch, ExecMode::Serial));
            }
        }
        self.provision_ahead(ctx, &actual);
        self.round += 1;
        if !ctx.all_done() {
            ctx.set_timer(self.window, Self::TIMER);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::harness::run_simulation;
    use crate::vanilla::Vanilla;
    use faasbatch_simcore::rng::DetRng;
    use faasbatch_simcore::time::SimTime;
    use faasbatch_trace::workload::{cpu_workload, WorkloadConfig};

    fn small_workload(seed: u64, total: usize) -> faasbatch_trace::workload::Workload {
        cpu_workload(
            &DetRng::new(seed),
            &WorkloadConfig {
                total,
                span: SimDuration::from_secs(20),
                functions: 3,
                bursts: 3,
                ..WorkloadConfig::default()
            },
        )
    }

    fn calibrated(w: &faasbatch_trace::workload::Workload) -> KrakenCalibration {
        let vanilla = run_simulation(
            Box::new(Vanilla::new()),
            w,
            SimConfig::default(),
            "cpu",
            None,
        );
        KrakenCalibration::from_vanilla(&vanilla)
    }

    #[test]
    fn calibration_extracts_p98_and_mean() {
        let w = small_workload(1, 60);
        let cal = calibrated(&w);
        assert_eq!(cal.slo.len(), w.registry().len().min(cal.slo.len()));
        for (&f, &slo) in &cal.slo {
            assert!(slo > SimDuration::ZERO);
            assert!(cal.exec_estimate(f) > SimDuration::ZERO);
            assert!(cal.slo_for(f) >= cal.exec_estimate(f));
        }
    }

    #[test]
    fn completes_workload_and_batches() {
        let w = small_workload(2, 80);
        let cal = calibrated(&w);
        let report = run_simulation(
            Box::new(Kraken::new(cal, SimDuration::from_millis(200))),
            &w,
            SimConfig::default(),
            "cpu",
            Some(SimDuration::from_millis(200)),
        );
        assert_eq!(report.records.len(), 80);
        assert!(report.inconsistencies().is_empty());
        // Batching ⇒ fewer containers than invocations.
        assert!(report.provisioned_containers < 80);
    }

    #[test]
    fn batching_produces_queuing_latency() {
        // A burst of identical invocations in one round must serialize
        // inside containers, so someone queues.
        let w = cpu_workload(
            &DetRng::new(3),
            &WorkloadConfig {
                total: 30,
                span: SimDuration::from_millis(50),
                functions: 1,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let cal = calibrated(&w);
        let report = run_simulation(
            Box::new(Kraken::new(cal, SimDuration::from_millis(200))),
            &w,
            SimConfig::default(),
            "cpu",
            Some(SimDuration::from_millis(200)),
        );
        let queued = report
            .records
            .iter()
            .filter(|r| !r.latency.queuing.is_zero())
            .count();
        assert!(queued > 0, "no invocation queued under Kraken batching");
    }

    #[test]
    fn pack_respects_deadlines() {
        let mut cal = KrakenCalibration::default();
        let f = FunctionId::new(0);
        cal.slo.insert(f, SimDuration::from_millis(300));
        cal.mean_exec.insert(f, SimDuration::from_millis(100));
        let kraken = Kraken::new(cal, SimDuration::from_millis(200));
        let now = SimTime::from_millis(200);
        let mk = |n: u64| Invocation {
            id: faasbatch_container::ids::InvocationId::new(n),
            function: f,
            arrival: SimTime::from_millis(190),
            work: SimDuration::from_millis(100),
        };
        // Deadline = 490 ms; warm start at 200 ms fits at most 2 × 100 ms...
        let batches = kraken.pack(now, f, (0..6).map(mk).collect(), 100, SimDuration::ZERO);
        for batch in &batches {
            assert!(batch.len() <= 2, "batch too big: {}", batch.len());
        }
        assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 6);
    }

    #[test]
    fn pack_accounts_for_cold_start() {
        let mut cal = KrakenCalibration::default();
        let f = FunctionId::new(0);
        cal.slo.insert(f, SimDuration::from_millis(300));
        cal.mean_exec.insert(f, SimDuration::from_millis(100));
        let kraken = Kraken::new(cal, SimDuration::from_millis(200));
        let now = SimTime::from_millis(200);
        let mk = |n: u64| Invocation {
            id: faasbatch_container::ids::InvocationId::new(n),
            function: f,
            arrival: SimTime::from_millis(190),
            work: SimDuration::from_millis(100),
        };
        // No warm containers and a 200 ms cold start: start at 400 ms,
        // deadline 490 ms → only 0 extra fits (each batch gets 1).
        let batches = kraken.pack(
            now,
            f,
            (0..4).map(mk).collect(),
            0,
            SimDuration::from_millis(200),
        );
        assert!(batches.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn oracle_pattern_counts_rounds() {
        let w = small_workload(7, 40);
        let pattern = OraclePattern::from_workload(&w, SimDuration::from_millis(200));
        let total: usize = (0..1000)
            .filter_map(|r| pattern.round(r))
            .flat_map(|m| m.values())
            .sum();
        assert_eq!(total, 40, "every invocation lands in exactly one round");
    }

    #[test]
    fn oracle_prewarming_cuts_cold_invocations() {
        let w = small_workload(8, 120);
        let cal = calibrated(&w);
        let window = SimDuration::from_millis(200);
        let lazy = run_simulation(
            Box::new(Kraken::new(cal.clone(), window)),
            &w,
            SimConfig::default(),
            "cpu",
            Some(window),
        );
        let oracle = run_simulation(
            Box::new(
                Kraken::new(cal, window).with_prediction(KrakenPrediction::Oracle(
                    OraclePattern::from_workload(&w, window),
                )),
            ),
            &w,
            SimConfig::default(),
            "cpu",
            Some(window),
        );
        assert_eq!(oracle.records.len(), 120);
        assert!(
            oracle.cold_fraction() <= lazy.cold_fraction(),
            "oracle cold {:.3} vs lazy {:.3}",
            oracle.cold_fraction(),
            lazy.cold_fraction()
        );
        assert!(oracle.provisioned_containers >= lazy.provisioned_containers);
    }

    #[test]
    fn ewma_mode_completes_and_provisions() {
        let w = small_workload(9, 100);
        let cal = calibrated(&w);
        let window = SimDuration::from_millis(200);
        let report = run_simulation(
            Box::new(
                Kraken::new(cal, window).with_prediction(KrakenPrediction::Ewma { alpha: 0.5 }),
            ),
            &w,
            SimConfig::default(),
            "cpu",
            Some(window),
        );
        assert_eq!(report.records.len(), 100);
        assert!(report.inconsistencies().is_empty());
    }

    #[test]
    #[should_panic(expected = "EWMA alpha")]
    fn invalid_alpha_panics() {
        let _ = Kraken::with_defaults(SimDuration::from_millis(200))
            .with_prediction(KrakenPrediction::Ewma { alpha: 0.0 });
    }

    #[test]
    fn defaults_used_for_unknown_functions() {
        let kraken = Kraken::with_defaults(SimDuration::from_millis(200));
        let f = FunctionId::new(99);
        assert_eq!(
            kraken.calibration.slo_for(f),
            SimDuration::from_millis(1_000)
        );
        assert_eq!(
            kraken.calibration.exec_estimate(f),
            SimDuration::from_millis(100)
        );
    }
}
