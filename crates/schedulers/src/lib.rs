//! # faasbatch-schedulers
//!
//! The shared simulation harness and five comparison schedulers.
//!
//! The FaaSBatch paper compares against **Vanilla** (one container per
//! invocation), **Kraken** (SLO/slack-driven serial batching with oracle
//! workload prediction), and **SFS** (per-invocation containers plus a
//! user-space CPU scheduler favouring short functions). All three are
//! reimplemented here as [`policy::Policy`] implementations over one shared
//! [`harness`] — so identical decisions cost identical simulated resources,
//! and the comparison isolates scheduling policy exactly as the paper's
//! single-worker testbed does. Two further published designs probe the
//! space from opposite ends: **Hiku** (pull-based worker-initiated
//! scheduling with warm-affinity, arXiv:2502.15534) and
//! **core-late-bind** (per-core run queues with last-moment binding,
//! Kaffes et al., arXiv:2111.07226). FaaSBatch itself lives in
//! `faasbatch-core` and plugs into the same harness.
//!
//! # Examples
//!
//! ```
//! use faasbatch_schedulers::config::SimConfig;
//! use faasbatch_schedulers::harness::run_simulation;
//! use faasbatch_schedulers::vanilla::Vanilla;
//! use faasbatch_simcore::rng::DetRng;
//! use faasbatch_simcore::time::SimDuration;
//! use faasbatch_trace::workload::{cpu_workload, WorkloadConfig};
//!
//! let workload = cpu_workload(&DetRng::new(42), &WorkloadConfig {
//!     total: 20,
//!     span: SimDuration::from_secs(10),
//!     functions: 2,
//!     bursts: 2,
//!     ..WorkloadConfig::default()
//! });
//! let report = run_simulation(
//!     Box::new(Vanilla::new()), &workload, SimConfig::default(), "cpu", None);
//! assert_eq!(report.records.len(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code propagates errors or uses `expect` with context; bare
// `unwrap()` stays confined to tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod config;
pub mod harness;
pub mod hiku;
pub mod kraken;
pub mod late_bind;
pub mod policy;
pub mod sfs;
pub mod testkit;
pub mod vanilla;

pub use config::SimConfig;
pub use harness::{run_simulation, Sim, SimWorld};
pub use hiku::Hiku;
pub use kraken::{Kraken, KrakenCalibration, KrakenPrediction, OraclePattern};
pub use late_bind::CoreLateBind;
pub use policy::{Completion, Ctx, DispatchRequest, ExecMode, Policy};
pub use sfs::Sfs;
pub use vanilla::Vanilla;
