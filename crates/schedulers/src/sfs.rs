//! The SFS baseline (user-space CPU scheduling for serverless functions).
//!
//! SFS ports into this framework as described in §IV: every invocation still
//! gets its own container (its contribution is CPU *scheduling*, not
//! placement), and a user-space scheduler prioritises short functions —
//! "improving the performance of short functions at the expense of
//! increasing the execution time of long functions". SFS perceives function
//! behaviour *while it runs* through adaptive time slices: a task that keeps
//! running keeps getting demoted.
//!
//! We express that with the CPU model's weighted fair sharing plus an aging
//! sweep: a freshly dispatched container starts at high priority (new work
//! is assumed short), and a periodic timer demotes containers the longer
//! their current batch has been executing — a smooth equivalent of
//! multi-level-feedback-queue demotion. The sweep itself burns platform CPU,
//! modelling SFS's scheduler overhead.

use crate::policy::{Ctx, DispatchRequest, ExecMode, Policy};
use faasbatch_container::ids::{ContainerId, FunctionId};
use faasbatch_metrics::latency::InvocationRecord;
use faasbatch_simcore::time::{SimDuration, SimTime};
use faasbatch_trace::workload::Invocation;
use std::collections::BTreeMap;

/// SFS: per-invocation containers + aging-based short-function priority.
#[derive(Debug, Clone)]
pub struct Sfs {
    /// Containers currently executing, with their batch start time.
    running: BTreeMap<ContainerId, SimTime>,
    /// How often the aging sweep re-weights running containers.
    sweep_period: SimDuration,
    /// Platform CPU burned per dispatch decision (scheduler bookkeeping).
    decision_overhead: SimDuration,
    /// Age at which a task still counts as "short" (first MLFQ level); the
    /// weight decays once execution outlives it.
    short_slice: SimDuration,
    sweeping: bool,
}

impl Default for Sfs {
    fn default() -> Self {
        Sfs {
            running: BTreeMap::new(),
            sweep_period: SimDuration::from_millis(50),
            decision_overhead: SimDuration::from_millis(5),
            short_slice: SimDuration::from_millis(50),
            sweeping: false,
        }
    }
}

impl Sfs {
    /// Aging-sweep timer token.
    const SWEEP: u64 = 1;
    /// Weight of a task within its first slice.
    const HOT_WEIGHT: f64 = 20.0;
    /// Weight floor for long-running tasks.
    const COLD_WEIGHT: f64 = 0.05;

    /// Creates the policy with default parameters.
    pub fn new() -> Self {
        Sfs::default()
    }

    /// Weight for a task that has been executing for `age`: flat and high
    /// within the first slice, then decaying inversely with age (each
    /// doubling of runtime roughly halves priority, like successive MLFQ
    /// demotions).
    fn weight_for_age(&self, age: SimDuration) -> f64 {
        let slice = self.short_slice.as_millis_f64();
        let age_ms = age.as_millis_f64();
        if age_ms <= slice {
            Self::HOT_WEIGHT
        } else {
            (Self::HOT_WEIGHT * slice / age_ms).max(Self::COLD_WEIGHT)
        }
    }

    fn ensure_sweeping(&mut self, ctx: &mut Ctx<'_>) {
        if !self.sweeping {
            self.sweeping = true;
            ctx.set_timer(self.sweep_period, Self::SWEEP);
        }
    }
}

impl Policy for Sfs {
    fn name(&self) -> String {
        "sfs".to_owned()
    }

    fn on_arrival(&mut self, ctx: &mut Ctx<'_>, invocation: &Invocation) {
        let mut req = DispatchRequest::new(vec![invocation.clone()], ExecMode::Serial);
        req.group_weight = Self::HOT_WEIGHT;
        req.extra_platform_work = self.decision_overhead;
        ctx.dispatch(req);
        self.ensure_sweeping(ctx);
    }

    fn on_batch_ready(&mut self, _ctx: &mut Ctx<'_>, container: ContainerId, _f: FunctionId) {
        self.running.insert(container, _ctx.now());
    }

    fn on_batch_done(&mut self, _ctx: &mut Ctx<'_>, container: ContainerId) {
        self.running.remove(&container);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        debug_assert_eq!(token, Self::SWEEP);
        let now = ctx.now();
        let updates: Vec<(ContainerId, f64)> = self
            .running
            .iter()
            .map(|(&cid, &started)| {
                (
                    cid,
                    self.weight_for_age(now.saturating_duration_since(started)),
                )
            })
            .collect();
        ctx.set_container_weights(&updates);
        if ctx.all_done() {
            self.sweeping = false;
        } else {
            ctx.set_timer(self.sweep_period, Self::SWEEP);
        }
    }

    fn on_invocation_done(&mut self, _ctx: &mut Ctx<'_>, _record: &InvocationRecord) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::harness::run_simulation;
    use crate::vanilla::Vanilla;
    use faasbatch_container::ids::InvocationId;
    use faasbatch_simcore::rng::DetRng;
    use faasbatch_trace::function::{FunctionKind, FunctionRegistry};
    use faasbatch_trace::workload::{cpu_workload, Workload, WorkloadConfig};

    #[test]
    fn weight_decays_with_age() {
        let sfs = Sfs::new();
        let young = sfs.weight_for_age(SimDuration::from_millis(10));
        let mid = sfs.weight_for_age(SimDuration::from_millis(200));
        let old = sfs.weight_for_age(SimDuration::from_secs(20));
        assert_eq!(young, Sfs::HOT_WEIGHT);
        assert!(mid < young);
        assert!(old < mid);
        assert!(old >= Sfs::COLD_WEIGHT);
    }

    #[test]
    fn completes_workload_without_queuing() {
        let w = cpu_workload(
            &DetRng::new(5),
            &WorkloadConfig {
                total: 40,
                span: SimDuration::from_secs(10),
                functions: 4,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(Box::new(Sfs::new()), &w, SimConfig::default(), "cpu", None);
        assert_eq!(report.records.len(), 40);
        assert!(report.inconsistencies().is_empty());
        assert!(report.records.iter().all(|r| r.latency.queuing.is_zero()));
    }

    /// A saturating two-function workload: a steady stream of very short
    /// invocations competing with long ones. SFS should beat Vanilla on the
    /// short function and lose on the long one — the SFS paper's signature
    /// trade-off.
    fn contended_workload() -> Workload {
        let mut reg = FunctionRegistry::new();
        let short = reg.register("short", FunctionKind::Cpu { fib_n: 22 });
        let long = reg.register("long", FunctionKind::Cpu { fib_n: 33 });
        let mut invs = Vec::new();
        let mut n = 0;
        // 4 long tasks at t=0 …
        for _ in 0..4 {
            invs.push(Invocation {
                id: InvocationId::new(n),
                function: long,
                arrival: SimTime::ZERO,
                work: SimDuration::from_millis(2_000),
            });
            n += 1;
        }
        // … fighting a steady stream of short tasks (8 every 100 ms for
        // 6 s ≈ 1.6 cores of demand on the 4-core host — sustainable, so
        // containers stay warm after the opening wave).
        for round in 0..60u64 {
            for _ in 0..8 {
                invs.push(Invocation {
                    id: InvocationId::new(n),
                    function: short,
                    arrival: SimTime::from_millis(round * 100),
                    work: SimDuration::from_millis(20),
                });
                n += 1;
            }
        }
        Workload::new(reg, invs)
    }

    #[test]
    fn favours_short_functions_under_contention() {
        let w = contended_workload();
        // Light cold starts isolate the CPU-scheduling effect from
        // provisioning turbulence (SFS's contribution is scheduling).
        let cfg = SimConfig {
            cores: 4.0,
            cold_start: faasbatch_container::spec::ColdStartModel::new(
                SimDuration::from_millis(50),
                SimDuration::from_millis(50),
            ),
            container_launch_work: SimDuration::from_millis(5),
            ..SimConfig::default()
        };
        let sfs = run_simulation(Box::new(Sfs::new()), &w, cfg.clone(), "cpu", None);
        let vanilla = run_simulation(Box::new(Vanilla::new()), &w, cfg, "cpu", None);
        let mean_exec = |report: &faasbatch_metrics::report::RunReport, name: &str| {
            let fid = w
                .registry()
                .iter()
                .find(|(_, p)| p.name == name)
                .map(|(id, _)| id)
                .unwrap();
            // Skip the opening cold-start wave (identical turbulence in both
            // systems) so the steady-state scheduling effect is visible.
            let samples: Vec<SimDuration> = report
                .records
                .iter()
                .filter(|r| r.function == fid && r.arrival >= SimTime::from_secs(2))
                .map(|r| r.latency.execution)
                .collect();
            let all: Vec<SimDuration> = if samples.is_empty() {
                report
                    .records
                    .iter()
                    .filter(|r| r.function == fid)
                    .map(|r| r.latency.execution)
                    .collect()
            } else {
                samples
            };
            faasbatch_metrics::stats::Cdf::from_samples(all).mean()
        };
        let sfs_short = mean_exec(&sfs, "short");
        let van_short = mean_exec(&vanilla, "short");
        let sfs_long = mean_exec(&sfs, "long");
        let van_long = mean_exec(&vanilla, "long");
        assert!(
            sfs_short < van_short,
            "short functions should improve: sfs {sfs_short} vs vanilla {van_short}"
        );
        assert!(
            sfs_long > van_long,
            "long functions should pay: sfs {sfs_long} vs vanilla {van_long}"
        );
    }

    #[test]
    fn sweep_stops_after_completion() {
        // If the sweep timer kept re-arming forever the run would hit the
        // harness horizon; completing is the assertion.
        let w = cpu_workload(
            &DetRng::new(6),
            &WorkloadConfig {
                total: 10,
                span: SimDuration::from_secs(2),
                functions: 1,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        let report = run_simulation(Box::new(Sfs::new()), &w, SimConfig::default(), "cpu", None);
        assert_eq!(report.records.len(), 10);
    }
}
