//! The scheduling-policy abstraction.
//!
//! A [`Policy`] is the *decision* half of a scheduler: it reacts to
//! invocation arrivals and timers and issues [`DispatchRequest`]s. The
//! *mechanism* half — containers, cold starts, CPU contention, client
//! creation, metrics — lives in the shared [`crate::harness`] so every
//! policy pays identical costs for identical decisions.

use crate::config::SimConfig;
use crate::harness::{Sim, SimWorld};
use faasbatch_container::ids::{ContainerId, FunctionId};
use faasbatch_metrics::latency::InvocationRecord;
use faasbatch_simcore::engine::Engine;
use faasbatch_simcore::time::{SimDuration, SimTime};
use faasbatch_trace::function::FunctionRegistry;
use faasbatch_trace::workload::Invocation;

/// How the invocations of one dispatched batch execute inside their
/// container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// All invocations expand as concurrent threads (FaaSBatch's
    /// inline-parallel strategy); queuing latency is zero.
    Parallel,
    /// Invocations run one after another (Kraken-style batching); later
    /// batch members accrue queuing latency.
    Serial,
}

/// When a batch member's response is released to the caller.
///
/// The paper's prototype (like every batch scheme it cites) returns the
/// batch's HTTP request only once **all** invocations of the group have
/// completed, and leaves early return as future work — both are available
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Completion {
    /// Each invocation completes the moment its own chain finishes (the
    /// paper's future-work "early return"; also how its per-invocation
    /// execution CDFs are measured).
    #[default]
    PerInvocation,
    /// Every member completes when the whole batch does; the barrier wait
    /// after a member's own execution is accounted as queuing latency.
    PerBatch,
}

/// A batch of invocations to place into one container.
#[derive(Debug, Clone)]
pub struct DispatchRequest {
    /// The invocations (all of the same function).
    pub invocations: Vec<Invocation>,
    /// Execution style inside the container.
    pub mode: ExecMode,
    /// Route client creations through a per-container resource multiplexer
    /// (FaaSBatch's Resource Multiplexer; baselines leave this off).
    pub multiplex_clients: bool,
    /// Optional CPU restriction for the container.
    pub cpu_limit: Option<f64>,
    /// Fair-share weight of the container's CPU group (SFS priorities).
    pub group_weight: f64,
    /// Extra platform CPU charged for this decision (e.g. SFS's user-space
    /// scheduler bookkeeping).
    pub extra_platform_work: SimDuration,
    /// Response-release semantics for the batch.
    pub completion: Completion,
}

impl DispatchRequest {
    /// A plain one-container batch with default knobs.
    pub fn new(invocations: Vec<Invocation>, mode: ExecMode) -> Self {
        DispatchRequest {
            invocations,
            mode,
            multiplex_clients: false,
            cpu_limit: None,
            group_weight: 1.0,
            extra_platform_work: SimDuration::ZERO,
            completion: Completion::PerInvocation,
        }
    }
}

/// Mutable view handed to policy callbacks.
///
/// Exposes the simulation clock, timer registration, dispatching, and
/// read-only platform state. All costs (decision work, cold starts,
/// container execution) are charged by the harness when
/// [`dispatch`](Ctx::dispatch) is called.
pub struct Ctx<'a> {
    pub(crate) world: &'a mut SimWorld,
    pub(crate) engine: &'a mut Engine<Sim>,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The shared configuration.
    pub fn config(&self) -> &SimConfig {
        self.world.config()
    }

    /// The workload's function registry.
    pub fn registry(&self) -> &FunctionRegistry {
        self.world.registry()
    }

    /// Number of invocations that have completed.
    pub fn completed(&self) -> usize {
        self.world.completed()
    }

    /// Total invocations in the workload.
    pub fn total(&self) -> usize {
        self.world.total()
    }

    /// True when every invocation has completed.
    pub fn all_done(&self) -> bool {
        self.world.completed() == self.world.total()
    }

    /// Idle warm containers currently available for `function`.
    pub fn warm_count(&self, function: FunctionId) -> usize {
        self.world.warm_count(function)
    }

    /// Schedules `policy.on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        crate::harness::schedule_policy_timer(self.engine, delay, token);
    }

    /// Adjusts the CPU fair-share weight of a live container mid-run —
    /// the hook an SFS-style user-space scheduler uses to demote tasks the
    /// longer they run.
    ///
    /// # Panics
    ///
    /// Panics if the container is unknown or terminated, or `weight` is not
    /// positive finite.
    pub fn set_container_weight(&mut self, container: ContainerId, weight: f64) {
        crate::harness::set_container_weight(self.world, self.engine.now(), container, weight);
    }

    /// Bulk form of [`set_container_weight`](Self::set_container_weight):
    /// one CPU-model recomputation for the whole sweep.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`set_container_weight`](Self::set_container_weight).
    pub fn set_container_weights(&mut self, updates: &[(ContainerId, f64)]) {
        crate::harness::set_container_weights(self.world, self.engine.now(), updates);
    }

    /// Pre-warms `count` fresh containers for `function`; each pays the
    /// full launch and cold-start cost and joins the warm pool when ready.
    /// This is the mechanism behind Kraken's EWMA-driven provisioning.
    pub fn prewarm(&mut self, function: FunctionId, count: usize) {
        crate::harness::prewarm(self.world, self.engine, function, count);
    }

    /// Dispatches a batch: charges the decision work, acquires a container
    /// (cold-starting if needed), executes the invocations under the
    /// requested mode, and releases the container when the whole batch is
    /// done. The harness reports per-invocation latency records.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or mixes functions.
    pub fn dispatch(&mut self, request: DispatchRequest) {
        crate::harness::dispatch(self.world, self.engine, request);
    }
}

/// A scheduling policy (Vanilla, Kraken, SFS, FaaSBatch, …).
///
/// Implementations hold only decision state; all platform state lives in
/// the harness. Callbacks run deterministically inside the event loop.
pub trait Policy {
    /// Human-readable name used in reports (`vanilla`, `kraken`, …).
    fn name(&self) -> String;

    /// Called once at simulation start (register timers here).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when an invocation arrives at the platform.
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>, invocation: &Invocation);

    /// Called when a timer registered via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Called when a dispatched batch begins executing in `container`
    /// (after any cold start).
    fn on_batch_ready(
        &mut self,
        _ctx: &mut Ctx<'_>,
        _container: ContainerId,
        _function: FunctionId,
    ) {
    }

    /// Called when a dispatched batch has fully completed and its container
    /// returned to the warm pool.
    fn on_batch_done(&mut self, _ctx: &mut Ctx<'_>, _container: ContainerId) {}

    /// Called when one invocation completes, with its final record.
    fn on_invocation_done(&mut self, _ctx: &mut Ctx<'_>, _record: &InvocationRecord) {}
}
