//! Invariant checks for scheduler implementations.
//!
//! Anyone writing a new [`Policy`](crate::policy::Policy) (see the
//! `custom_policy` example) gets the same correctness bar the built-in
//! schedulers are held to: run the policy, then call
//! [`violations`] (collect) or [`assert_invariants`] (panic) on the result.
//!
//! Checked invariants (DESIGN.md §4):
//!
//! 1. exactly-once completion with dense invocation ids;
//! 2. records reference the right function and arrival;
//! 3. latency components tile arrival → completion exactly;
//! 4. execution covers at least the invocation's intrinsic work;
//! 5. the cold flag agrees with the cold-start component;
//! 6. container accounting (peak ≤ provisioned, served ⊆ provisioned);
//! 7. CPU conservation (core-seconds ≥ the workload's intrinsic work);
//! 8. client accounting on I/O workloads (requests counted, creations
//!    bounded by requests).

use faasbatch_metrics::report::RunReport;
use faasbatch_trace::workload::Workload;
use std::collections::{HashMap, HashSet};

/// Collects every invariant violation (empty = the run is sound).
pub fn violations(workload: &Workload, report: &RunReport) -> Vec<String> {
    let mut out = Vec::new();
    let tag = &report.scheduler;

    // 1. Exactly-once completion.
    if report.records.len() != workload.len() {
        out.push(format!(
            "{tag}: {} of {} invocations completed",
            report.records.len(),
            workload.len()
        ));
    }
    let mut seen = HashSet::new();
    for rec in &report.records {
        if !seen.insert(rec.id) {
            out.push(format!("{tag}: {} completed more than once", rec.id));
        }
    }

    // 2–5. Per-record checks.
    let by_id: HashMap<u64, &faasbatch_trace::workload::Invocation> = workload
        .invocations()
        .iter()
        .map(|i| (i.id.value(), i))
        .collect();
    for rec in &report.records {
        let Some(inv) = by_id.get(&rec.id.value()) else {
            out.push(format!("{tag}: {} not in the workload", rec.id));
            continue;
        };
        if rec.function != inv.function {
            out.push(format!("{tag}: {} served as the wrong function", rec.id));
        }
        if rec.arrival != inv.arrival {
            out.push(format!("{tag}: {} has a mutated arrival", rec.id));
        }
        if !rec.is_consistent() {
            out.push(format!(
                "{tag}: {} latency components do not tile arrival→completion",
                rec.id
            ));
        }
        if rec.latency.execution < inv.work {
            out.push(format!(
                "{tag}: {} executed {} < intrinsic work {}",
                rec.id, rec.latency.execution, inv.work
            ));
        }
        if rec.cold == rec.latency.cold_start.is_zero() {
            out.push(format!(
                "{tag}: {} cold flag contradicts cold-start latency",
                rec.id
            ));
        }
    }

    // 6. Container accounting.
    if report.peak_live_containers > report.provisioned_containers {
        out.push(format!(
            "{tag}: peak live {} exceeds provisioned {}",
            report.peak_live_containers, report.provisioned_containers
        ));
    }
    let served: HashSet<_> = report.records.iter().map(|r| r.container).collect();
    if served.len() as u64 > report.provisioned_containers {
        out.push(format!(
            "{tag}: served from {} containers but provisioned {}",
            served.len(),
            report.provisioned_containers
        ));
    }

    // 7. CPU conservation.
    let intrinsic = workload.total_work().as_secs_f64();
    if report.core_seconds < intrinsic * 0.99 {
        out.push(format!(
            "{tag}: burned {:.3} core-s < intrinsic {:.3}",
            report.core_seconds, intrinsic
        ));
    }

    // 8. Client accounting.
    let io = workload
        .invocations()
        .iter()
        .filter(|i| workload.registry().profile(i.function).kind.is_io())
        .count() as u64;
    if report.client_requests != io {
        out.push(format!(
            "{tag}: {} client requests for {} I/O invocations",
            report.client_requests, io
        ));
    }
    if report.clients_created > report.client_requests {
        out.push(format!(
            "{tag}: created {} clients for {} requests",
            report.clients_created, report.client_requests
        ));
    }
    out
}

/// Panics with every violation listed if the run is unsound.
///
/// # Panics
///
/// Panics when [`violations`] is non-empty.
pub fn assert_invariants(workload: &Workload, report: &RunReport) {
    let v = violations(workload, report);
    assert!(
        v.is_empty(),
        "scheduler invariant violations:\n{}",
        v.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::harness::run_simulation;
    use crate::vanilla::Vanilla;
    use faasbatch_simcore::rng::DetRng;
    use faasbatch_simcore::time::SimDuration;
    use faasbatch_trace::workload::{cpu_workload, WorkloadConfig};

    fn run() -> (Workload, RunReport) {
        let w = cpu_workload(
            &DetRng::new(1),
            &WorkloadConfig {
                total: 30,
                span: SimDuration::from_secs(5),
                functions: 2,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        );
        let r = run_simulation(
            Box::new(Vanilla::new()),
            &w,
            SimConfig::default(),
            "t",
            None,
        );
        (w, r)
    }

    #[test]
    fn sound_run_has_no_violations() {
        let (w, r) = run();
        assert!(violations(&w, &r).is_empty());
        assert_invariants(&w, &r);
    }

    #[test]
    fn detects_dropped_invocations() {
        let (w, mut r) = run();
        r.records.pop();
        let v = violations(&w, &r);
        assert!(v.iter().any(|m| m.contains("29 of 30")), "{v:?}");
    }

    #[test]
    fn detects_duplicates_and_mutations() {
        let (w, mut r) = run();
        let dup = r.records[0];
        r.records.push(dup);
        r.records[1].arrival += SimDuration::from_millis(1);
        let v = violations(&w, &r);
        assert!(v.iter().any(|m| m.contains("more than once")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("mutated arrival")), "{v:?}");
    }

    #[test]
    fn detects_component_gaps() {
        let (w, mut r) = run();
        r.records[0].completion += SimDuration::from_secs(1);
        let v = violations(&w, &r);
        assert!(v.iter().any(|m| m.contains("tile")), "{v:?}");
    }

    #[test]
    fn detects_cpu_undercount() {
        let (w, mut r) = run();
        r.core_seconds = 0.0;
        let v = violations(&w, &r);
        assert!(v.iter().any(|m| m.contains("core-s")), "{v:?}");
    }

    #[test]
    #[should_panic(expected = "scheduler invariant violations")]
    fn assert_panics_on_violation() {
        let (w, mut r) = run();
        r.records.clear();
        assert_invariants(&w, &r);
    }
}
