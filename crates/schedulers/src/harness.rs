//! The shared execution harness: mechanism for every scheduling policy.
//!
//! [`run_simulation`] replays a [`Workload`] under one [`Policy`] on a
//! simulated worker and produces a [`RunReport`]. The harness owns all
//! *mechanism* so that policies differ only in *decisions*:
//!
//! * arrivals are injected at their trace timestamps;
//! * each [`DispatchRequest`] first pays a
//!   decision/launch cost on the container daemon (a capped CPU group —
//!   per-invocation provisioning therefore queues up under bursts, the
//!   root cause of Vanilla's and SFS's scheduling-latency explosion);
//! * cold starts run their two phases (image latency, then runtime-boot CPU
//!   inside the container's group) before the batch executes;
//! * I/O-function bodies request a storage client first: creations are
//!   serialized per container with Fig. 4's contention-scaled cost, and a
//!   per-container *resource multiplexer* (FaaSBatch only) caches instances
//!   by hashed creation args with single-flight semantics;
//! * every completed invocation yields an [`InvocationRecord`] whose four
//!   latency components are contiguous by construction;
//! * host memory, CPU, and container counts are sampled once per second.

use crate::config::SimConfig;
use crate::policy::{Completion, Ctx, DispatchRequest, ExecMode, Policy};
use faasbatch_container::cluster::Cluster;
use faasbatch_container::ids::{ContainerId, FunctionId};
use faasbatch_container::spec::ContainerSpec;
use faasbatch_metrics::latency::{InvocationRecord, LatencyBreakdown};
use faasbatch_metrics::report::RunReport;
use faasbatch_metrics::sampler::{ResourceSample, ResourceSampler};
use faasbatch_simcore::cpu::{CpuGroupId, CpuTaskId};
use faasbatch_simcore::engine::{Engine, EventId};
use faasbatch_simcore::memory::AllocationId;
use faasbatch_simcore::time::{SimDuration, SimTime};
use faasbatch_trace::function::{FunctionKind, FunctionRegistry};
use faasbatch_trace::workload::{Invocation, Workload};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// Memory-ledger category for storage clients.
const MEM_CLIENT: &str = "client";

/// Identifies one dispatched batch inside the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct BatchId(u64);

/// What a running CPU task represents.
#[derive(Debug, Clone, Copy)]
enum WorkKind {
    /// Daemon-side decision / launch processing for a batch.
    Decision(BatchId),
    /// CPU phase of a cold start.
    ColdBoot(BatchId),
    /// Storage-client creation for one batch member.
    ClientCreation(BatchId, usize),
    /// The invocation body.
    Body(BatchId, usize),
    /// Daemon-side launch processing for a pre-warmed container.
    PrewarmLaunch(ContainerId),
    /// CPU phase of a pre-warming cold start.
    PrewarmBoot(ContainerId),
    /// Fire-and-forget platform overhead (e.g. SFS scheduler bookkeeping).
    Overhead,
}

#[derive(Debug)]
struct Batch {
    mode: ExecMode,
    multiplex: bool,
    group_weight: f64,
    completion: Completion,
    invocations: Vec<Invocation>,
    decision_done: Option<SimTime>,
    container: Option<ContainerId>,
    cold: bool,
    ready_at: Option<SimTime>,
    exec_start: Vec<Option<SimTime>>,
    /// Per-member own-chain finish instants (barrier accounting for
    /// [`Completion::PerBatch`]).
    own_finish: Vec<Option<SimTime>>,
    serial_next: usize,
    remaining: usize,
}

/// Per-container harness state that outlives individual batches (warm reuse
/// keeps the multiplexer cache alive, as in the paper's Fig. 8).
#[derive(Debug, Default)]
struct ContainerExt {
    /// Multiplexer cache: hashed creation args → live client allocation.
    client_cache: HashMap<u64, AllocationId>,
    /// Single-flight: args hash → batch members waiting on the in-flight
    /// creation.
    in_flight: HashMap<u64, Vec<(BatchId, usize)>>,
    /// Creations waiting their turn (serialized per container).
    creation_queue: VecDeque<(BatchId, usize)>,
    /// Whether a creation is currently executing.
    creating: bool,
}

/// The full mechanism state of one simulation run.
pub struct SimWorld {
    cfg: SimConfig,
    cluster: Cluster,
    registry: FunctionRegistry,
    daemon_group: CpuGroupId,
    batches: HashMap<BatchId, Batch>,
    next_batch: u64,
    running: HashMap<CpuTaskId, WorkKind>,
    cpu_event: Option<EventId>,
    ext: HashMap<ContainerId, ContainerExt>,
    transient_clients: HashMap<(BatchId, usize), AllocationId>,
    records: Vec<InvocationRecord>,
    sampler: ResourceSampler,
    total: usize,
    completed: usize,
    first_arrival: SimTime,
    last_completion: SimTime,
    client_requests: u64,
    clients_created: u64,
    client_bytes_allocated: u64,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld")
            .field("completed", &self.completed)
            .field("total", &self.total)
            .field("batches", &self.batches.len())
            .finish()
    }
}

impl SimWorld {
    fn new(cfg: SimConfig, workload: &Workload) -> Self {
        let mut cluster = Cluster::new(cfg.cores, cfg.cold_start.clone(), cfg.keep_alive);
        let daemon_group = cluster.cpu_mut().create_group(Some(cfg.daemon_cores));
        SimWorld {
            cluster,
            registry: workload.registry().clone(),
            daemon_group,
            batches: HashMap::new(),
            next_batch: 0,
            running: HashMap::new(),
            cpu_event: None,
            ext: HashMap::new(),
            transient_clients: HashMap::new(),
            records: Vec::with_capacity(workload.len()),
            sampler: ResourceSampler::new(),
            total: workload.len(),
            completed: 0,
            first_arrival: workload
                .invocations()
                .first()
                .map_or(SimTime::ZERO, |i| i.arrival),
            last_completion: SimTime::ZERO,
            client_requests: 0,
            clients_created: 0,
            client_bytes_allocated: 0,
            cfg,
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The workload's registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Completed invocations.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total invocations.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Idle warm containers for `function`.
    pub fn warm_count(&self, function: FunctionId) -> usize {
        self.cluster.warm_count(function)
    }

    fn done(&self) -> bool {
        self.completed == self.total
    }
}

/// World + policy: the engine's state type.
pub struct Sim {
    /// Mechanism state.
    pub world: SimWorld,
    /// Decision state.
    pub policy: Box<dyn Policy>,
}

fn hash_key<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Schedules `policy.on_timer(token)` after `delay`.
pub(crate) fn schedule_policy_timer(engine: &mut Engine<Sim>, delay: SimDuration, token: u64) {
    engine.schedule_in(delay, move |sim: &mut Sim, engine| {
        {
            let Sim { world, policy } = sim;
            policy.on_timer(&mut Ctx { world, engine }, token);
        }
        pump_cpu(&mut sim.world, engine);
    });
}

/// Adjusts one live container's CPU fair-share weight.
pub(crate) fn set_container_weight(
    world: &mut SimWorld,
    now: SimTime,
    container: ContainerId,
    weight: f64,
) {
    let group = world.cluster.container(container).cpu_group();
    world.cluster.cpu_mut().set_group_weight(now, group, weight);
}

/// Bulk weight adjustment with a single rate recomputation.
pub(crate) fn set_container_weights(
    world: &mut SimWorld,
    now: SimTime,
    updates: &[(ContainerId, f64)],
) {
    let group_updates: Vec<_> = updates
        .iter()
        .map(|&(cid, w)| (world.cluster.container(cid).cpu_group(), w))
        .collect();
    world
        .cluster
        .cpu_mut()
        .set_group_weights(now, &group_updates);
}

/// Entry point for [`Ctx::dispatch`]: registers the batch and starts its
/// daemon-side decision work.
pub(crate) fn dispatch(world: &mut SimWorld, engine: &mut Engine<Sim>, req: DispatchRequest) {
    assert!(!req.invocations.is_empty(), "dispatch of empty batch");
    let function = req.invocations[0].function;
    assert!(
        req.invocations.iter().all(|i| i.function == function),
        "batch mixes functions"
    );
    let now = engine.now();
    let id = BatchId(world.next_batch);
    world.next_batch += 1;

    let mut spec = ContainerSpec::new(function).with_base_memory(world.cfg.container_base_memory);
    if let Some(limit) = req.cpu_limit {
        spec = spec.with_cpu_limit(limit);
    }

    // The container binds at dispatch time, as real platforms do: a warm
    // container is reserved immediately; otherwise a new one is committed
    // (and later-arriving requests cannot claim it). Routing to a warm
    // container is cheap; a launch costs real daemon CPU (`docker run`).
    let acq = world.cluster.acquire(now, &spec);
    let cid = acq.container();
    world.ext.entry(cid).or_default();
    let decision_work = if acq.is_cold() {
        world.cfg.container_launch_work
    } else {
        world.cfg.warm_dispatch_work
    };
    if !req.extra_platform_work.is_zero() {
        let t = world
            .cluster
            .start_platform_work(now, req.extra_platform_work);
        world.running.insert(t, WorkKind::Overhead);
    }
    let n = req.invocations.len();
    world.batches.insert(
        id,
        Batch {
            mode: req.mode,
            multiplex: req.multiplex_clients,
            group_weight: req.group_weight,
            completion: req.completion,
            invocations: req.invocations,
            decision_done: None,
            container: Some(cid),
            cold: acq.is_cold(),
            ready_at: None,
            exec_start: vec![None; n],
            own_finish: vec![None; n],
            serial_next: 0,
            remaining: n,
        },
    );
    let task = world
        .cluster
        .cpu_mut()
        .add_task(now, world.daemon_group, decision_work);
    world.running.insert(task, WorkKind::Decision(id));
    // The caller (arrival/timer/cpu-tick wrapper) pumps the CPU afterwards.
}

/// Pre-warms `count` fresh containers for `function`: each pays the full
/// launch + cold-start pipeline and lands in the warm pool when ready —
/// Kraken's EWMA-driven provisioning uses this.
pub(crate) fn prewarm(
    world: &mut SimWorld,
    engine: &mut Engine<Sim>,
    function: FunctionId,
    count: usize,
) {
    let now = engine.now();
    for _ in 0..count {
        let spec = ContainerSpec::new(function).with_base_memory(world.cfg.container_base_memory);
        let cid = world.cluster.provision_cold(now, &spec);
        world.ext.entry(cid).or_default();
        let task = world.cluster.cpu_mut().add_task(
            now,
            world.daemon_group,
            world.cfg.container_launch_work,
        );
        world.running.insert(task, WorkKind::PrewarmLaunch(cid));
    }
}

/// (Re)arms the single pending CPU-completion event.
fn pump_cpu(world: &mut SimWorld, engine: &mut Engine<Sim>) {
    if let Some(ev) = world.cpu_event.take() {
        engine.cancel(ev);
    }
    if let Some((when, _)) = world.cluster.cpu().next_completion(engine.now()) {
        let ev = engine.schedule_at(when, cpu_tick);
        world.cpu_event = Some(ev);
    }
}

fn cpu_tick(sim: &mut Sim, engine: &mut Engine<Sim>) {
    let now = engine.now();
    sim.world.cpu_event = None;
    let finished = sim.world.cluster.cpu_mut().advance_to(now);
    for task in finished {
        let kind = sim
            .world
            .running
            .remove(&task)
            .expect("completed CPU task not registered");
        match kind {
            WorkKind::Decision(b) => on_decision_done(sim, engine, b),
            WorkKind::ColdBoot(b) => on_cold_boot_done(sim, engine, b),
            WorkKind::ClientCreation(b, i) => on_creation_done(sim, engine, b, i),
            WorkKind::Body(b, i) => on_body_done(sim, engine, b, i),
            WorkKind::PrewarmLaunch(cid) => {
                // Daemon processed the launch; begin the boot phases.
                let image = sim.world.cfg.cold_start.image_latency();
                engine.schedule_in(image, move |sim: &mut Sim, engine| {
                    let now = engine.now();
                    let world = &mut sim.world;
                    let boot = world.cluster.start_cold_cpu_work(now, cid);
                    world.running.insert(boot, WorkKind::PrewarmBoot(cid));
                    pump_cpu(world, engine);
                });
            }
            WorkKind::PrewarmBoot(cid) => {
                sim.world.cluster.finish_cold_start_idle(now, cid);
            }
            WorkKind::Overhead => {}
        }
    }
    pump_cpu(&mut sim.world, engine);
}

fn on_decision_done(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId) {
    let now = engine.now();
    let world = &mut sim.world;
    let batch = world.batches.get_mut(&id).expect("unknown batch");
    batch.decision_done = Some(now);
    let cid = batch.container.expect("container bound at dispatch");
    if batch.cold {
        // The daemon has processed the launch; the container now boots
        // (image/runtime phase, then CPU phase inside its own group).
        let image = world.cfg.cold_start.image_latency();
        engine.schedule_in(image, move |sim: &mut Sim, engine| {
            let now = engine.now();
            let world = &mut sim.world;
            let task = world.cluster.start_cold_cpu_work(now, cid);
            world.running.insert(task, WorkKind::ColdBoot(id));
            pump_cpu(world, engine);
        });
    } else {
        batch.ready_at = Some(now);
        let function = batch.invocations[0].function;
        let weight = batch.group_weight;
        set_container_weight(world, now, cid, weight);
        start_batch_execution(world, now, id);
        let Sim { world, policy } = sim;
        policy.on_batch_ready(&mut Ctx { world, engine }, cid, function);
    }
}

fn on_cold_boot_done(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId) {
    let now = engine.now();
    let world = &mut sim.world;
    let cid = world.batches[&id]
        .container
        .expect("cold boot without container");
    world.cluster.finish_cold_start(now, cid);
    world.batches.get_mut(&id).expect("unknown batch").ready_at = Some(now);
    let function = world.batches[&id].invocations[0].function;
    let weight = world.batches[&id].group_weight;
    set_container_weight(world, now, cid, weight);
    start_batch_execution(world, now, id);
    let Sim { world, policy } = sim;
    policy.on_batch_ready(&mut Ctx { world, engine }, cid, function);
}

fn start_batch_execution(world: &mut SimWorld, now: SimTime, id: BatchId) {
    let (mode, n) = {
        let batch = &world.batches[&id];
        (batch.mode, batch.invocations.len())
    };
    match mode {
        ExecMode::Parallel => {
            for idx in 0..n {
                start_invocation_chain(world, now, id, idx);
            }
        }
        ExecMode::Serial => {
            world
                .batches
                .get_mut(&id)
                .expect("unknown batch")
                .serial_next = 1;
            start_invocation_chain(world, now, id, 0);
        }
    }
}

/// Begins one invocation's execution inside its container: client phase
/// (I/O functions) then body.
fn start_invocation_chain(world: &mut SimWorld, now: SimTime, id: BatchId, idx: usize) {
    let (function, multiplex, cid) = {
        let batch = world.batches.get_mut(&id).expect("unknown batch");
        batch.exec_start[idx] = Some(now);
        (
            batch.invocations[idx].function,
            batch.multiplex,
            batch.container.expect("chain without container"),
        )
    };
    let kind = world.registry.profile(function).kind.clone();
    match kind {
        FunctionKind::Cpu { .. } => start_body(world, now, id, idx),
        FunctionKind::Io { ref bucket, .. } => {
            world.client_requests += 1;
            let key = hash_key(bucket);
            let ext = world.ext.get_mut(&cid).expect("container ext exists");
            if multiplex {
                if ext.client_cache.contains_key(&key) {
                    // Multiplexer hit: reuse the cached instance for free.
                    start_body(world, now, id, idx);
                } else if let Some(waiters) = ext.in_flight.get_mut(&key) {
                    // Single-flight: someone is already building this client.
                    waiters.push((id, idx));
                } else {
                    ext.in_flight.insert(key, Vec::new());
                    enqueue_creation(world, now, cid, id, idx);
                }
            } else {
                enqueue_creation(world, now, cid, id, idx);
            }
        }
    }
}

fn enqueue_creation(world: &mut SimWorld, now: SimTime, cid: ContainerId, id: BatchId, idx: usize) {
    let ext = world.ext.get_mut(&cid).expect("container ext exists");
    ext.creation_queue.push_back((id, idx));
    start_next_creation(world, now, cid);
}

/// Pops the next queued creation (if none is running) and starts its CPU
/// work; per-creation cost scales with how many creations are simultaneously
/// wanted in this container (Fig. 4's contention curve).
fn start_next_creation(world: &mut SimWorld, now: SimTime, cid: ContainerId) {
    let (id, idx, concurrent) = {
        let ext = world.ext.get_mut(&cid).expect("container ext exists");
        if ext.creating {
            return;
        }
        let Some((id, idx)) = ext.creation_queue.pop_front() else {
            return;
        };
        ext.creating = true;
        (id, idx, ext.creation_queue.len() + 1)
    };
    let work = world.cfg.client_cost.creation_work(concurrent);
    let task = world.cluster.start_invocation_work(now, cid, work);
    world
        .running
        .insert(task, WorkKind::ClientCreation(id, idx));
}

fn on_creation_done(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId, idx: usize) {
    let now = engine.now();
    let world = &mut sim.world;
    let (cid, multiplex, bucket) = {
        let batch = &world.batches[&id];
        let function = batch.invocations[idx].function;
        let bucket = match &world.registry.profile(function).kind {
            FunctionKind::Io { bucket, .. } => bucket.clone(),
            FunctionKind::Cpu { .. } => unreachable!("creation for CPU function"),
        };
        (
            batch.container.expect("no container"),
            batch.multiplex,
            bucket,
        )
    };
    let bytes = world.cfg.client_cost.memory_per_client;
    let alloc = world.cluster.mem_mut().alloc(now, MEM_CLIENT, bytes);
    world.clients_created += 1;
    world.client_bytes_allocated += bytes;

    let key = hash_key(&bucket);
    let waiters = {
        let ext = world.ext.get_mut(&cid).expect("container ext exists");
        ext.creating = false;
        if multiplex {
            ext.client_cache.insert(key, alloc);
            ext.in_flight.remove(&key).unwrap_or_default()
        } else {
            world.transient_clients.insert((id, idx), alloc);
            Vec::new()
        }
    };
    // The creator proceeds to its body, as do all single-flight waiters.
    start_body(world, now, id, idx);
    for (wb, wi) in waiters {
        start_body(world, now, wb, wi);
    }
    // Keep the serialized creation pipeline moving.
    start_next_creation(world, now, cid);
}

fn start_body(world: &mut SimWorld, now: SimTime, id: BatchId, idx: usize) {
    let (cid, work) = {
        let batch = &world.batches[&id];
        (
            batch.container.expect("body without container"),
            batch.invocations[idx].work,
        )
    };
    let task = world.cluster.start_invocation_work(now, cid, work);
    world.running.insert(task, WorkKind::Body(id, idx));
}

fn on_body_done(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId, idx: usize) {
    let function = sim.world.batches[&id].invocations[idx].function;
    let kind = sim.world.registry.profile(function).kind.clone();
    match kind {
        FunctionKind::Io { ops, .. } => {
            // Object operations are service latency, not host CPU.
            let delay = sim.world.cfg.client_cost.op_latency * ops as u64;
            if delay.is_zero() {
                finish_invocation(sim, engine, id, idx);
            } else {
                engine.schedule_in(delay, move |sim: &mut Sim, engine| {
                    finish_invocation(sim, engine, id, idx);
                    pump_cpu(&mut sim.world, engine);
                });
            }
        }
        FunctionKind::Cpu { .. } => finish_invocation(sim, engine, id, idx),
    }
}

/// Builds the latency record for member `idx`, completing at `completion`.
/// Under [`Completion::PerBatch`] the barrier wait between a member's own
/// finish and the batch end is charged to queuing, keeping the components
/// contiguous.
fn build_record(batch: &Batch, idx: usize, completion: SimTime) -> InvocationRecord {
    let inv = &batch.invocations[idx];
    let decision_done = batch.decision_done.expect("no decision time");
    let ready = batch.ready_at.expect("no ready time");
    let exec_start = batch.exec_start[idx].expect("no exec start");
    let own_finish = batch.own_finish[idx].expect("no finish time");
    InvocationRecord {
        id: inv.id,
        function: inv.function,
        container: batch.container.expect("no container"),
        arrival: inv.arrival,
        completion,
        cold: batch.cold,
        latency: LatencyBreakdown {
            scheduling: decision_done.saturating_duration_since(inv.arrival),
            cold_start: if batch.cold {
                ready.saturating_duration_since(decision_done)
            } else {
                SimDuration::ZERO
            },
            queuing: exec_start.saturating_duration_since(ready)
                + completion.saturating_duration_since(own_finish),
            execution: own_finish.saturating_duration_since(exec_start),
        },
    }
}

fn finish_invocation(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId, idx: usize) {
    let now = engine.now();
    let record = {
        let world = &mut sim.world;
        if let Some(alloc) = world.transient_clients.remove(&(id, idx)) {
            // Non-multiplexed clients die with their invocation (garbage
            // collected when the handler returns).
            world.cluster.mem_mut().free(now, alloc);
        }
        let batch = world.batches.get_mut(&id).expect("unknown batch");
        batch.own_finish[idx] = Some(now);
        match batch.completion {
            Completion::PerInvocation => {
                let record = build_record(batch, idx, now);
                world.records.push(record);
                world.completed += 1;
                world.last_completion = now;
                Some(record)
            }
            // The response is held until the whole group returns.
            Completion::PerBatch => None,
        }
    };
    if let Some(record) = record {
        let Sim { world, policy } = sim;
        policy.on_invocation_done(&mut Ctx { world, engine }, &record);
    }
    // Serial batches: hand the container to the next queued member.
    let (serial_next, batch_finished, cid, n) = {
        let batch = sim.world.batches.get_mut(&id).expect("unknown batch");
        batch.remaining -= 1;
        let next = if batch.mode == ExecMode::Serial && batch.serial_next < batch.invocations.len()
        {
            let i = batch.serial_next;
            batch.serial_next += 1;
            Some(i)
        } else {
            None
        };
        (
            next,
            batch.remaining == 0,
            batch.container.expect("no container"),
            batch.invocations.len() as u64,
        )
    };
    if let Some(next_idx) = serial_next {
        start_invocation_chain(&mut sim.world, now, id, next_idx);
    }
    if batch_finished {
        // Release barrier-held responses in member order.
        let held: Vec<InvocationRecord> = {
            let world = &mut sim.world;
            let batch = &world.batches[&id];
            if batch.completion == Completion::PerBatch {
                (0..batch.invocations.len())
                    .map(|i| build_record(batch, i, now))
                    .collect()
            } else {
                Vec::new()
            }
        };
        for record in held {
            sim.world.records.push(record);
            sim.world.completed += 1;
            sim.world.last_completion = now;
            let Sim { world, policy } = sim;
            policy.on_invocation_done(&mut Ctx { world, engine }, &record);
        }
        sim.world.cluster.release(now, cid, n);
        let Sim { world, policy } = sim;
        policy.on_batch_done(&mut Ctx { world, engine }, cid);
    }
}

fn schedule_sampler(engine: &mut Engine<Sim>, period: SimDuration) {
    engine.schedule_in(period, move |sim: &mut Sim, engine| {
        let world = &mut sim.world;
        record_sample(world, engine.now());
        if !world.done() {
            schedule_sampler(engine, period);
        }
    });
}

fn record_sample(world: &mut SimWorld, now: SimTime) {
    world.sampler.record(ResourceSample {
        at: now,
        memory_bytes: world.cluster.mem().current_bytes(),
        busy_cores: world.cluster.cpu().busy_cores(),
        live_containers: world.cluster.live_containers(),
    });
}

/// Replays `workload` under `policy` and returns the run's report.
///
/// The run is deterministic: identical `(policy, workload, cfg)` inputs
/// produce identical reports.
///
/// # Panics
///
/// Panics if the simulation stalls (a policy dropped invocations) — every
/// workload invocation must eventually complete.
pub fn run_simulation(
    policy: Box<dyn Policy>,
    workload: &Workload,
    cfg: SimConfig,
    workload_label: &str,
    dispatch_interval: Option<SimDuration>,
) -> RunReport {
    let mut engine: Engine<Sim> = Engine::new();
    let world = SimWorld::new(cfg, workload);
    let mut sim = Sim { world, policy };

    // Inject arrivals.
    for inv in workload.invocations() {
        let inv = inv.clone();
        engine.schedule_at(inv.arrival, move |sim: &mut Sim, engine| {
            {
                let Sim { world, policy } = sim;
                policy.on_arrival(&mut Ctx { world, engine }, &inv);
            }
            pump_cpu(&mut sim.world, engine);
        });
    }

    // First host sample at t = 0, then every period.
    record_sample(&mut sim.world, SimTime::ZERO);
    schedule_sampler(&mut engine, sim.world.cfg.sample_period);

    // Policy start hook.
    {
        let Sim { world, policy } = &mut sim;
        policy.on_start(&mut Ctx {
            world,
            engine: &mut engine,
        });
    }
    pump_cpu(&mut sim.world, &mut engine);

    // Safety horizon: a healthy run finishes long before this.
    let horizon = workload.last_arrival() + SimDuration::from_secs(24 * 3600);
    engine.set_horizon(horizon);
    while !sim.world.done() && engine.step(&mut sim) {}
    assert!(
        sim.world.done(),
        "simulation stalled: {}/{} invocations completed",
        sim.world.completed,
        sim.world.total
    );

    let world = sim.world;
    let stats = world.cluster.stats();
    let mut records = world.records;
    records.sort_by_key(|r| r.id);
    let makespan = world
        .last_completion
        .saturating_duration_since(world.first_arrival);
    RunReport {
        scheduler: sim.policy.name(),
        workload: workload_label.to_owned(),
        dispatch_interval,
        records,
        sampler: world.sampler,
        provisioned_containers: stats.provisioned,
        warm_hits: stats.warm_hits,
        peak_live_containers: stats.peak_live,
        core_seconds: world.cluster.cpu().core_seconds(),
        core_seconds_daemon: world.cluster.cpu().group_core_seconds(world.daemon_group),
        core_seconds_platform: world
            .cluster
            .cpu()
            .group_core_seconds(world.cluster.platform_group()),
        host_cores: world.cfg.cores,
        makespan,
        clients_created: world.clients_created,
        client_requests: world.client_requests,
        client_bytes_allocated: world.client_bytes_allocated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasbatch_simcore::rng::DetRng;
    use faasbatch_trace::workload::{cpu_workload, WorkloadConfig};

    fn tiny_workload() -> Workload {
        cpu_workload(
            &DetRng::new(3),
            &WorkloadConfig {
                total: 8,
                // Spread well past the ~1.3 s cold start so pre-warmed
                // containers have time to become warm.
                span: SimDuration::from_secs(20),
                functions: 1,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        )
    }

    /// A policy that pre-warms before any arrival, so the whole workload is
    /// served warm.
    struct PrewarmEverything {
        done: bool,
    }

    impl Policy for PrewarmEverything {
        fn name(&self) -> String {
            "prewarmer".to_owned()
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let f = ctx
                .registry()
                .iter()
                .next()
                .map(|(id, _)| id)
                .expect("one function");
            ctx.prewarm(f, 5);
            self.done = true;
        }
        fn on_arrival(&mut self, ctx: &mut Ctx<'_>, invocation: &Invocation) {
            ctx.dispatch(DispatchRequest::new(
                vec![invocation.clone()],
                ExecMode::Serial,
            ));
        }
    }

    #[test]
    fn prewarmed_containers_serve_warm() {
        let w = tiny_workload();
        let report = run_simulation(
            Box::new(PrewarmEverything { done: false }),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
        );
        assert_eq!(report.records.len(), 8);
        // Five containers pre-warmed at t = 0; arrivals after the ~1.3 s
        // boot find them warm. Each cold-served arrival adds one container
        // beyond the 5 pre-warms.
        let warm_served = report.records.iter().filter(|r| !r.cold).count();
        assert!(warm_served >= 1, "nothing was served warm");
        assert_eq!(
            report.provisioned_containers,
            5 + (report.records.len() - warm_served) as u64
        );
    }

    #[test]
    #[should_panic(expected = "dispatch of empty batch")]
    fn empty_dispatch_panics() {
        struct Bad;
        impl Policy for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn on_arrival(&mut self, ctx: &mut Ctx<'_>, _inv: &Invocation) {
                ctx.dispatch(DispatchRequest::new(Vec::new(), ExecMode::Serial));
            }
        }
        let w = tiny_workload();
        run_simulation(
            Box::new(Bad),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
        );
    }

    #[test]
    #[should_panic(expected = "batch mixes functions")]
    fn mixed_function_batch_panics() {
        struct Mixer {
            held: Vec<Invocation>,
        }
        impl Policy for Mixer {
            fn name(&self) -> String {
                "mixer".into()
            }
            fn on_arrival(&mut self, ctx: &mut Ctx<'_>, inv: &Invocation) {
                self.held.push(inv.clone());
                if self.held.len() == 2 {
                    ctx.dispatch(DispatchRequest::new(
                        std::mem::take(&mut self.held),
                        ExecMode::Parallel,
                    ));
                }
            }
        }
        let w = cpu_workload(
            &DetRng::new(4),
            &WorkloadConfig {
                total: 16,
                span: SimDuration::from_secs(1),
                functions: 4,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        run_simulation(
            Box::new(Mixer { held: Vec::new() }),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
        );
    }

    /// Buffers everything and dispatches one Serial batch with
    /// batch-granularity responses after all arrivals.
    struct OneSerialBatch {
        held: Vec<Invocation>,
    }

    impl Policy for OneSerialBatch {
        fn name(&self) -> String {
            "one-serial-batch".into()
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_secs(30), 0);
        }
        fn on_arrival(&mut self, _ctx: &mut Ctx<'_>, inv: &Invocation) {
            self.held.push(inv.clone());
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            let mut req = DispatchRequest::new(std::mem::take(&mut self.held), ExecMode::Serial);
            req.completion = crate::policy::Completion::PerBatch;
            ctx.dispatch(req);
        }
    }

    #[test]
    fn per_batch_serial_holds_all_responses_to_the_end() {
        let w = tiny_workload();
        let report = run_simulation(
            Box::new(OneSerialBatch { held: Vec::new() }),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
        );
        assert_eq!(report.records.len(), 8);
        let completions: std::collections::HashSet<_> =
            report.records.iter().map(|r| r.completion).collect();
        assert_eq!(
            completions.len(),
            1,
            "all responses released at the barrier"
        );
        for r in &report.records {
            assert!(r.is_consistent(), "{r:?}");
        }
        // Exactly one container, serially reused by the whole batch.
        assert_eq!(report.provisioned_containers, 1);
    }
}
