//! The shared execution harness: mechanism for every scheduling policy.
//!
//! [`run_simulation`] replays a [`Workload`] under one [`Policy`] on a
//! simulated worker and produces a [`RunReport`]. The harness owns all
//! *mechanism* so that policies differ only in *decisions*:
//!
//! * arrivals are injected at their trace timestamps;
//! * each [`DispatchRequest`] first pays a
//!   decision/launch cost on the container daemon (a capped CPU group —
//!   per-invocation provisioning therefore queues up under bursts, the
//!   root cause of Vanilla's and SFS's scheduling-latency explosion);
//! * cold starts run their two phases (image latency, then runtime-boot CPU
//!   inside the container's group) before the batch executes;
//! * I/O-function bodies request a storage client first: creations are
//!   serialized per container with Fig. 4's contention-scaled cost, and a
//!   per-container *resource multiplexer* (FaaSBatch only) caches instances
//!   by hashed creation args with single-flight semantics.
//!
//! Every step of that mechanism is *emitted* as a typed
//! [`SimEvent`] into a pluggable
//! [`TraceSink`]: the harness keeps no parallel counters. Invocation
//! records, host samples, and client statistics are all derived from the
//! stream by a [`RecordReducer`] folding alongside the sink, so what a
//! report claims and what a trace shows cannot drift apart
//! (DESIGN.md §11). [`run_simulation_traced`] exposes the stream;
//! [`run_simulation`] wires in the zero-cost no-op sink.

use crate::config::SimConfig;
use crate::policy::{Completion, Ctx, DispatchRequest, ExecMode, Policy};
use faasbatch_container::cluster::Cluster;
use faasbatch_container::ids::{ContainerId, FunctionId};
use faasbatch_container::spec::ContainerSpec;
use faasbatch_metrics::autoscaler::{PrewarmTier, ScaleAction};
use faasbatch_metrics::events::{
    EventKind, NoopSink, RecordReducer, SimEvent, TaskKind, TraceSink,
};
use faasbatch_metrics::latency::InvocationRecord;
use faasbatch_metrics::report::RunReport;
use faasbatch_simcore::cpu::{CpuGroupId, CpuTaskId};
use faasbatch_simcore::engine::{Engine, EventArg, EventId};
use faasbatch_simcore::memory::{AllocationId, MemOpKind};
use faasbatch_simcore::time::{SimDuration, SimTime};
use faasbatch_trace::function::{FunctionKind, FunctionRegistry};
use faasbatch_trace::stream::InvocationSource;
use faasbatch_trace::workload::{Invocation, Workload};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};

/// Memory-ledger category for storage clients.
const MEM_CLIENT: &str = "client";

/// Identifies one dispatched batch inside the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct BatchId(u64);

/// What a running CPU task represents.
#[derive(Debug, Clone, Copy)]
enum WorkKind {
    /// Daemon-side decision / launch processing for a batch.
    Decision(BatchId),
    /// CPU phase of a cold start.
    ColdBoot(BatchId),
    /// Storage-client creation for one batch member.
    ClientCreation(BatchId, usize),
    /// The invocation body.
    Body(BatchId, usize),
    /// Daemon-side launch processing for a pre-warmed container.
    PrewarmLaunch(ContainerId),
    /// CPU phase of a pre-warming cold start.
    PrewarmBoot(ContainerId),
    /// Fire-and-forget platform overhead (e.g. SFS scheduler bookkeeping).
    Overhead,
}

/// The serializable trace mirror of a [`WorkKind`].
fn task_kind(kind: WorkKind) -> TaskKind {
    match kind {
        WorkKind::Decision(b) => TaskKind::Decision { batch: b.0 },
        WorkKind::ColdBoot(b) => TaskKind::ColdBoot { batch: b.0 },
        WorkKind::ClientCreation(b, i) => TaskKind::ClientCreation {
            batch: b.0,
            member: i as u32,
        },
        WorkKind::Body(b, i) => TaskKind::Body {
            batch: b.0,
            member: i as u32,
        },
        WorkKind::PrewarmLaunch(c) => TaskKind::PrewarmLaunch { container: c },
        WorkKind::PrewarmBoot(c) => TaskKind::PrewarmBoot { container: c },
        WorkKind::Overhead => TaskKind::Overhead,
    }
}

/// Routing/identity state for one dispatched batch. All *timing* lives in
/// the event stream (the [`RecordReducer`] owns it); the harness only keeps
/// what it needs to drive execution forward.
#[derive(Debug)]
struct Batch {
    mode: ExecMode,
    multiplex: bool,
    group_weight: f64,
    completion: Completion,
    invocations: Vec<Invocation>,
    container: Option<ContainerId>,
    cold: bool,
    /// Served from the snapshot tier: the container becomes ready after
    /// `restore_latency` of pure delay instead of a full boot.
    restored: bool,
    restore_latency: SimDuration,
    serial_next: usize,
    remaining: usize,
}

/// Per-container harness state that outlives individual batches (warm reuse
/// keeps the multiplexer cache alive, as in the paper's Fig. 8).
#[derive(Debug, Default)]
struct ContainerExt {
    /// Multiplexer cache: hashed creation args → live client allocation.
    client_cache: HashMap<u64, AllocationId>,
    /// Single-flight: args hash → batch members waiting on the in-flight
    /// creation.
    in_flight: HashMap<u64, Vec<(BatchId, usize)>>,
    /// Creations waiting their turn (serialized per container).
    creation_queue: VecDeque<(BatchId, usize)>,
    /// Whether a creation is currently executing.
    creating: bool,
}

/// The full mechanism state of one simulation run.
pub struct SimWorld {
    cfg: SimConfig,
    cluster: Cluster,
    registry: FunctionRegistry,
    daemon_group: CpuGroupId,
    batches: HashMap<BatchId, Batch>,
    next_batch: u64,
    running: HashMap<CpuTaskId, WorkKind>,
    cpu_event: Option<EventId>,
    /// Pre-warm pipelines (launch → image pull → boot) still in flight.
    /// Non-zero keeps the run stepping after the last invocation completes
    /// so every speculative cold start closes before the stream ends.
    open_prewarms: usize,
    /// Pre-warm pipelines bound for the snapshot tier: on boot completion
    /// the container's state is captured and the container terminated
    /// instead of parking in the warm pool.
    snapshot_prewarms: HashSet<ContainerId>,
    ext: HashMap<ContainerId, ContainerExt>,
    transient_clients: HashMap<(BatchId, usize), AllocationId>,
    /// Folds the event stream into records, samples, and counters.
    reducer: RecordReducer,
    /// Observer for the same stream the reducer folds.
    trace: Box<dyn TraceSink>,
    /// Events folded by the reducer but not yet handed to the sink; flushed
    /// in contiguous batches (the reducer always sees each event first, so
    /// report derivation is unaffected by the buffering).
    pending_events: Vec<SimEvent>,
    total: usize,
}

/// Flush threshold for the buffered event stream.
const EVENT_BATCH: usize = 256;

/// Hands the buffered event run to the sink as one `record_batch` call.
fn flush_events(world: &mut SimWorld) {
    if !world.pending_events.is_empty() {
        world.trace.record_batch(&world.pending_events);
        world.pending_events.clear();
    }
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld")
            .field("completed", &self.reducer.completed())
            .field("total", &self.total)
            .field("batches", &self.batches.len())
            .finish()
    }
}

impl SimWorld {
    fn new(
        cfg: SimConfig,
        registry: FunctionRegistry,
        total: usize,
        trace: Box<dyn TraceSink>,
    ) -> Self {
        let mut cluster = Cluster::new(cfg.cores, cfg.cold_start.clone(), cfg.keep_alive);
        cluster.configure_snapshots(cfg.snapshot.clone());
        let daemon_group = cluster.cpu_mut().create_group(Some(cfg.daemon_cores));
        SimWorld {
            cluster,
            registry,
            daemon_group,
            batches: HashMap::new(),
            next_batch: 0,
            running: HashMap::new(),
            cpu_event: None,
            open_prewarms: 0,
            snapshot_prewarms: HashSet::new(),
            ext: HashMap::new(),
            transient_clients: HashMap::new(),
            reducer: RecordReducer::new(),
            trace,
            pending_events: Vec::with_capacity(EVENT_BATCH),
            total,
            cfg,
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The workload's registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Completed invocations (derived from the event stream).
    pub fn completed(&self) -> usize {
        self.reducer.completed()
    }

    /// Total invocations.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Idle warm containers for `function`.
    pub fn warm_count(&self, function: FunctionId) -> usize {
        self.cluster.warm_count(function)
    }

    fn done(&self) -> bool {
        self.reducer.completed() == self.total
    }
}

/// World + policy: the engine's state type.
pub struct Sim {
    /// Mechanism state.
    pub world: SimWorld,
    /// Decision state.
    pub policy: Box<dyn Policy>,
}

fn hash_key<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Translates journalled lower-layer operations (memory ledger, container
/// lifecycle) into trace events. The two journals are merged by timestamp
/// (memory first on ties, matching causal order inside `Cluster::acquire`)
/// so the stream stays in non-decreasing time order.
fn drain_journals(world: &mut SimWorld) {
    if !world.cluster.transitions_pending() && !world.cluster.mem().journal_pending() {
        return;
    }
    let transitions = world.cluster.take_transitions();
    let mem_ops = world.cluster.mem_mut().take_journal();
    let mut trs = transitions.into_iter().peekable();
    let mut ops = mem_ops.into_iter().peekable();
    loop {
        let take_mem = match (ops.peek(), trs.peek()) {
            (Some(op), Some(tr)) => op.at <= tr.at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let event = if take_mem {
            let op = ops.next().expect("peeked");
            let kind = match op.kind {
                MemOpKind::Alloc => EventKind::MemAlloc {
                    category: op.category,
                    bytes: op.bytes,
                    total: op.total_after,
                },
                MemOpKind::Free => EventKind::MemFree {
                    category: op.category,
                    bytes: op.bytes,
                    total: op.total_after,
                },
            };
            SimEvent::new(op.at, kind)
        } else {
            let tr = trs.next().expect("peeked");
            SimEvent::new(
                tr.at,
                EventKind::ContainerStateChange {
                    container: tr.container,
                    from: tr.from,
                    to: tr.to,
                },
            )
        };
        world.reducer.on_event(&event);
        world.pending_events.push(event);
    }
    if world.pending_events.len() >= EVENT_BATCH {
        flush_events(world);
    }
}

/// Emits one semantic event at `at`, after flushing any journalled
/// lower-layer operations so the stream stays causally ordered. Returns the
/// completed invocation's record when the event completes one.
fn emit(world: &mut SimWorld, at: SimTime, kind: EventKind) -> Option<InvocationRecord> {
    drain_journals(world);
    let event = SimEvent::new(at, kind);
    let record = world.reducer.on_event(&event);
    world.pending_events.push(event);
    if world.pending_events.len() >= EVENT_BATCH {
        flush_events(world);
    }
    record
}

/// Schedules `policy.on_timer(token)` after `delay`.
pub(crate) fn schedule_policy_timer(engine: &mut Engine<Sim>, delay: SimDuration, token: u64) {
    engine.schedule_arg_in(delay, policy_timer_tick, EventArg::one(token));
}

fn policy_timer_tick(sim: &mut Sim, engine: &mut Engine<Sim>, arg: EventArg) {
    {
        let Sim { world, policy } = sim;
        policy.on_timer(&mut Ctx { world, engine }, arg.a);
    }
    pump_cpu(&mut sim.world, engine);
}

/// Adjusts one live container's CPU fair-share weight.
pub(crate) fn set_container_weight(
    world: &mut SimWorld,
    now: SimTime,
    container: ContainerId,
    weight: f64,
) {
    let group = world.cluster.container(container).cpu_group();
    world.cluster.cpu_mut().set_group_weight(now, group, weight);
}

/// Bulk weight adjustment with a single rate recomputation.
pub(crate) fn set_container_weights(
    world: &mut SimWorld,
    now: SimTime,
    updates: &[(ContainerId, f64)],
) {
    let group_updates: Vec<_> = updates
        .iter()
        .map(|&(cid, w)| (world.cluster.container(cid).cpu_group(), w))
        .collect();
    world
        .cluster
        .cpu_mut()
        .set_group_weights(now, &group_updates);
}

/// Entry point for [`Ctx::dispatch`]: registers the batch and starts its
/// daemon-side decision work.
pub(crate) fn dispatch(world: &mut SimWorld, engine: &mut Engine<Sim>, req: DispatchRequest) {
    assert!(!req.invocations.is_empty(), "dispatch of empty batch");
    let function = req.invocations[0].function;
    assert!(
        req.invocations.iter().all(|i| i.function == function),
        "batch mixes functions"
    );
    let now = engine.now();
    let id = BatchId(world.next_batch);
    world.next_batch += 1;

    let mut spec = ContainerSpec::new(function).with_base_memory(world.cfg.container_base_memory);
    if let Some(limit) = req.cpu_limit {
        spec = spec.with_cpu_limit(limit);
    }

    // The container binds at dispatch time, as real platforms do: a warm
    // container is reserved immediately; otherwise a new one is committed
    // (and later-arriving requests cannot claim it). Routing to a warm
    // container is cheap; a launch costs real daemon CPU (`docker run`).
    let acq = world.cluster.acquire(now, &spec);
    let cid = acq.container();
    world.ext.entry(cid).or_default();
    let restore_latency = match &acq {
        faasbatch_container::cluster::Acquired::Restored { latency, .. } => *latency,
        _ => SimDuration::ZERO,
    };
    // Warm hits are routed for pennies; both a full boot and a snapshot
    // restore launch a fresh container, so the daemon pays the launch cost
    // either way — the tiers differ in what happens after the decision.
    let decision_work = if acq.is_cold() || acq.is_restored() {
        world.cfg.container_launch_work
    } else {
        world.cfg.warm_dispatch_work
    };
    emit(
        world,
        now,
        EventKind::DispatchDecision {
            batch: id.0,
            function,
            container: cid,
            cold: acq.is_cold(),
            restored: acq.is_restored(),
            barrier: req.completion == Completion::PerBatch,
            members: req.invocations.iter().map(|i| i.id).collect(),
        },
    );
    if !req.extra_platform_work.is_zero() {
        let t = world
            .cluster
            .start_platform_work(now, req.extra_platform_work);
        world.running.insert(t, WorkKind::Overhead);
        emit(
            world,
            now,
            EventKind::TaskStart {
                task: TaskKind::Overhead,
            },
        );
    }
    let n = req.invocations.len();
    world.batches.insert(
        id,
        Batch {
            mode: req.mode,
            multiplex: req.multiplex_clients,
            group_weight: req.group_weight,
            completion: req.completion,
            invocations: req.invocations,
            container: Some(cid),
            cold: acq.is_cold(),
            restored: acq.is_restored(),
            restore_latency,
            serial_next: 0,
            remaining: n,
        },
    );
    let task = world
        .cluster
        .cpu_mut()
        .add_task(now, world.daemon_group, decision_work);
    world.running.insert(task, WorkKind::Decision(id));
    emit(
        world,
        now,
        EventKind::TaskStart {
            task: TaskKind::Decision { batch: id.0 },
        },
    );
    // The caller (arrival/timer/cpu-tick wrapper) pumps the CPU afterwards.
}

/// Pre-warms `count` fresh containers for `function`: each pays the full
/// launch + cold-start pipeline and lands in the warm pool when ready —
/// Kraken's EWMA-driven provisioning uses this.
pub(crate) fn prewarm(
    world: &mut SimWorld,
    engine: &mut Engine<Sim>,
    function: FunctionId,
    count: usize,
) {
    let now = engine.now();
    for _ in 0..count {
        let spec = ContainerSpec::new(function).with_base_memory(world.cfg.container_base_memory);
        let cid = world.cluster.provision_cold(now, &spec);
        world.ext.entry(cid).or_default();
        let task = world.cluster.cpu_mut().add_task(
            now,
            world.daemon_group,
            world.cfg.container_launch_work,
        );
        world.running.insert(task, WorkKind::PrewarmLaunch(cid));
        world.open_prewarms += 1;
        emit(
            world,
            now,
            EventKind::TaskStart {
                task: TaskKind::PrewarmLaunch { container: cid },
            },
        );
    }
}

/// Like [`prewarm`], but bound for the snapshot tier: each container pays
/// the full launch + boot pipeline, then captures a snapshot and terminates
/// instead of parking warm — warmth persists with no memory held.
pub(crate) fn prewarm_snapshot(
    world: &mut SimWorld,
    engine: &mut Engine<Sim>,
    function: FunctionId,
    count: usize,
) {
    let now = engine.now();
    for _ in 0..count {
        let spec = ContainerSpec::new(function).with_base_memory(world.cfg.container_base_memory);
        let cid = world.cluster.provision_cold(now, &spec);
        world.ext.entry(cid).or_default();
        world.snapshot_prewarms.insert(cid);
        let task = world.cluster.cpu_mut().add_task(
            now,
            world.daemon_group,
            world.cfg.container_launch_work,
        );
        world.running.insert(task, WorkKind::PrewarmLaunch(cid));
        world.open_prewarms += 1;
        emit(
            world,
            now,
            EventKind::TaskStart {
                task: TaskKind::PrewarmLaunch { container: cid },
            },
        );
    }
}

/// (Re)arms the single pending CPU-completion event.
fn pump_cpu(world: &mut SimWorld, engine: &mut Engine<Sim>) {
    if let Some(ev) = world.cpu_event.take() {
        engine.cancel(ev);
    }
    if let Some((when, _)) = world.cluster.cpu().next_completion(engine.now()) {
        let ev = engine.schedule_fn_at(when, cpu_tick);
        world.cpu_event = Some(ev);
    }
}

fn cpu_tick(sim: &mut Sim, engine: &mut Engine<Sim>) {
    let now = engine.now();
    sim.world.cpu_event = None;
    let finished = sim.world.cluster.cpu_mut().advance_to(now);
    for task in finished {
        let kind = sim
            .world
            .running
            .remove(&task)
            .expect("completed CPU task not registered");
        emit(
            &mut sim.world,
            now,
            EventKind::TaskFinish {
                task: task_kind(kind),
            },
        );
        match kind {
            WorkKind::Decision(b) => on_decision_done(sim, engine, b),
            WorkKind::ColdBoot(b) => on_cold_boot_done(sim, engine, b),
            WorkKind::ClientCreation(b, i) => on_creation_done(sim, engine, b, i),
            WorkKind::Body(b, i) => on_body_done(sim, engine, b, i),
            WorkKind::PrewarmLaunch(cid) => {
                // Daemon processed the launch; begin the boot phases.
                emit(
                    &mut sim.world,
                    now,
                    EventKind::ColdStartBegin {
                        container: cid,
                        batch: None,
                    },
                );
                let image = sim.world.cfg.cold_start.image_latency();
                engine.schedule_arg_in(image, prewarm_image_done, EventArg::one(cid.value()));
            }
            WorkKind::PrewarmBoot(cid) => {
                sim.world.open_prewarms -= 1;
                if sim.world.snapshot_prewarms.remove(&cid) {
                    // Snapshot-tier pre-warm: capture the booted state and
                    // terminate — the snapshot outlives the container at
                    // zero memory cost.
                    sim.world.cluster.finish_cold_start_snapshot(now, cid);
                } else {
                    sim.world.cluster.finish_cold_start_idle(now, cid);
                }
                emit(
                    &mut sim.world,
                    now,
                    EventKind::ColdStartEnd {
                        container: cid,
                        batch: None,
                    },
                );
            }
            WorkKind::Overhead => {}
        }
    }
    pump_cpu(&mut sim.world, engine);
}

/// Image pull finished for a pre-warm pipeline (`arg.a` = container id):
/// start the runtime-boot CPU phase inside the container's group.
fn prewarm_image_done(sim: &mut Sim, engine: &mut Engine<Sim>, arg: EventArg) {
    let cid = ContainerId::new(arg.a);
    let now = engine.now();
    let world = &mut sim.world;
    let boot = world.cluster.start_cold_cpu_work(now, cid);
    world.running.insert(boot, WorkKind::PrewarmBoot(cid));
    emit(
        world,
        now,
        EventKind::TaskStart {
            task: TaskKind::PrewarmBoot { container: cid },
        },
    );
    pump_cpu(world, engine);
}

/// Image pull finished for a dispatched cold start (`arg.a` = batch id,
/// `arg.b` = container id): start the runtime-boot CPU phase.
fn cold_image_done(sim: &mut Sim, engine: &mut Engine<Sim>, arg: EventArg) {
    let id = BatchId(arg.a);
    let cid = ContainerId::new(arg.b);
    let now = engine.now();
    let world = &mut sim.world;
    let task = world.cluster.start_cold_cpu_work(now, cid);
    world.running.insert(task, WorkKind::ColdBoot(id));
    emit(
        world,
        now,
        EventKind::TaskStart {
            task: TaskKind::ColdBoot { batch: id.0 },
        },
    );
    pump_cpu(world, engine);
}

fn on_decision_done(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId) {
    let now = engine.now();
    let world = &mut sim.world;
    let batch = world.batches.get(&id).expect("unknown batch");
    let cid = batch.container.expect("container bound at dispatch");
    if batch.cold {
        // The daemon has processed the launch; the container now boots
        // (image/runtime phase, then CPU phase inside its own group).
        emit(
            world,
            now,
            EventKind::ColdStartBegin {
                container: cid,
                batch: Some(id.0),
            },
        );
        let image = world.cfg.cold_start.image_latency();
        engine.schedule_arg_in(image, cold_image_done, EventArg::new(id.0, cid.value()));
    } else if batch.restored {
        // Snapshot restore: the pre-initialized state is mapped back in —
        // pure latency, no host CPU burned re-running initialization.
        let latency = batch.restore_latency;
        emit(
            world,
            now,
            EventKind::RestoreBegin {
                container: cid,
                batch: Some(id.0),
            },
        );
        engine.schedule_arg_in(latency, restore_finished, EventArg::new(id.0, cid.value()));
    } else {
        let function = batch.invocations[0].function;
        let weight = batch.group_weight;
        set_container_weight(world, now, cid, weight);
        start_batch_execution(world, now, id);
        let Sim { world, policy } = sim;
        policy.on_batch_ready(&mut Ctx { world, engine }, cid, function);
    }
}

/// Snapshot restore landed (`arg.a` = batch id, `arg.b` = container id):
/// the container is ready and the batch executes, exactly as after a cold
/// boot but tens of milliseconds later instead of seconds.
fn restore_finished(sim: &mut Sim, engine: &mut Engine<Sim>, arg: EventArg) {
    let id = BatchId(arg.a);
    let cid = ContainerId::new(arg.b);
    let now = engine.now();
    let world = &mut sim.world;
    world.cluster.finish_restore(now, cid);
    emit(
        world,
        now,
        EventKind::RestoreDone {
            container: cid,
            batch: Some(id.0),
        },
    );
    let function = world.batches[&id].invocations[0].function;
    let weight = world.batches[&id].group_weight;
    set_container_weight(world, now, cid, weight);
    start_batch_execution(world, now, id);
    {
        let Sim { world, policy } = sim;
        policy.on_batch_ready(&mut Ctx { world, engine }, cid, function);
    }
    pump_cpu(&mut sim.world, engine);
}

fn on_cold_boot_done(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId) {
    let now = engine.now();
    let world = &mut sim.world;
    let cid = world.batches[&id]
        .container
        .expect("cold boot without container");
    world.cluster.finish_cold_start(now, cid);
    emit(
        world,
        now,
        EventKind::ColdStartEnd {
            container: cid,
            batch: Some(id.0),
        },
    );
    let function = world.batches[&id].invocations[0].function;
    let weight = world.batches[&id].group_weight;
    set_container_weight(world, now, cid, weight);
    start_batch_execution(world, now, id);
    let Sim { world, policy } = sim;
    policy.on_batch_ready(&mut Ctx { world, engine }, cid, function);
}

fn start_batch_execution(world: &mut SimWorld, now: SimTime, id: BatchId) {
    let (mode, n) = {
        let batch = &world.batches[&id];
        (batch.mode, batch.invocations.len())
    };
    match mode {
        ExecMode::Parallel => {
            for idx in 0..n {
                start_invocation_chain(world, now, id, idx);
            }
        }
        ExecMode::Serial => {
            world
                .batches
                .get_mut(&id)
                .expect("unknown batch")
                .serial_next = 1;
            start_invocation_chain(world, now, id, 0);
        }
    }
}

/// How an I/O member's client request was routed by the multiplexer.
enum ClientRoute {
    /// Cache hit: proceed straight to the body.
    Hit,
    /// Single-flight wait: parked until the in-flight creation lands.
    Wait,
    /// This member must create the client.
    Create,
}

/// Begins one invocation's execution inside its container: client phase
/// (I/O functions) then body.
fn start_invocation_chain(world: &mut SimWorld, now: SimTime, id: BatchId, idx: usize) {
    let (function, multiplex, cid, work) = {
        let batch = &world.batches[&id];
        (
            batch.invocations[idx].function,
            batch.multiplex,
            batch.container.expect("chain without container"),
            batch.invocations[idx].work,
        )
    };
    emit(
        world,
        now,
        EventKind::ExecBegin {
            batch: id.0,
            member: idx as u32,
            work,
        },
    );
    let kind = world.registry.profile(function).kind.clone();
    match kind {
        FunctionKind::Cpu { .. } => start_body(world, now, id, idx),
        FunctionKind::Io { ref bucket, .. } => {
            let key = hash_key(bucket);
            let route = if multiplex {
                let ext = world.ext.get_mut(&cid).expect("container ext exists");
                if ext.client_cache.contains_key(&key) {
                    ClientRoute::Hit
                } else if let Some(waiters) = ext.in_flight.get_mut(&key) {
                    // Single-flight: someone is already building this client.
                    waiters.push((id, idx));
                    ClientRoute::Wait
                } else {
                    ext.in_flight.insert(key, Vec::new());
                    ClientRoute::Create
                }
            } else {
                ClientRoute::Create
            };
            match route {
                ClientRoute::Hit => {
                    // Multiplexer hit: reuse the cached instance for free.
                    emit(
                        world,
                        now,
                        EventKind::ClientCacheHit {
                            container: cid,
                            key,
                        },
                    );
                    start_body(world, now, id, idx);
                }
                ClientRoute::Wait => {
                    emit(
                        world,
                        now,
                        EventKind::ClientCacheMiss {
                            container: cid,
                            key,
                        },
                    );
                }
                ClientRoute::Create => {
                    emit(
                        world,
                        now,
                        EventKind::ClientCacheMiss {
                            container: cid,
                            key,
                        },
                    );
                    enqueue_creation(world, now, cid, id, idx);
                }
            }
        }
    }
}

fn enqueue_creation(world: &mut SimWorld, now: SimTime, cid: ContainerId, id: BatchId, idx: usize) {
    let ext = world.ext.get_mut(&cid).expect("container ext exists");
    ext.creation_queue.push_back((id, idx));
    start_next_creation(world, now, cid);
}

/// Pops the next queued creation (if none is running) and starts its CPU
/// work; per-creation cost scales with how many creations are simultaneously
/// wanted in this container (Fig. 4's contention curve).
fn start_next_creation(world: &mut SimWorld, now: SimTime, cid: ContainerId) {
    let (id, idx, concurrent) = {
        let ext = world.ext.get_mut(&cid).expect("container ext exists");
        if ext.creating {
            return;
        }
        let Some((id, idx)) = ext.creation_queue.pop_front() else {
            return;
        };
        ext.creating = true;
        (id, idx, ext.creation_queue.len() + 1)
    };
    let work = world.cfg.client_cost.creation_work(concurrent);
    let task = world.cluster.start_invocation_work(now, cid, work);
    world
        .running
        .insert(task, WorkKind::ClientCreation(id, idx));
    emit(
        world,
        now,
        EventKind::ClientCreateBegin {
            container: cid,
            batch: id.0,
            member: idx as u32,
        },
    );
    emit(
        world,
        now,
        EventKind::TaskStart {
            task: TaskKind::ClientCreation {
                batch: id.0,
                member: idx as u32,
            },
        },
    );
}

fn on_creation_done(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId, idx: usize) {
    let now = engine.now();
    let world = &mut sim.world;
    let (cid, multiplex, bucket) = {
        let batch = &world.batches[&id];
        let function = batch.invocations[idx].function;
        let bucket = match &world.registry.profile(function).kind {
            FunctionKind::Io { bucket, .. } => bucket.clone(),
            FunctionKind::Cpu { .. } => unreachable!("creation for CPU function"),
        };
        (
            batch.container.expect("no container"),
            batch.multiplex,
            bucket,
        )
    };
    let bytes = world.cfg.client_cost.memory_per_client;
    let alloc = world.cluster.mem_mut().alloc(now, MEM_CLIENT, bytes);
    emit(
        world,
        now,
        EventKind::ClientCreateEnd {
            container: cid,
            batch: id.0,
            member: idx as u32,
            bytes,
        },
    );

    let key = hash_key(&bucket);
    let waiters = {
        let ext = world.ext.get_mut(&cid).expect("container ext exists");
        ext.creating = false;
        if multiplex {
            ext.client_cache.insert(key, alloc);
            ext.in_flight.remove(&key).unwrap_or_default()
        } else {
            world.transient_clients.insert((id, idx), alloc);
            Vec::new()
        }
    };
    // The creator proceeds to its body, as do all single-flight waiters.
    start_body(world, now, id, idx);
    for (wb, wi) in waiters {
        start_body(world, now, wb, wi);
    }
    // Keep the serialized creation pipeline moving.
    start_next_creation(world, now, cid);
}

fn start_body(world: &mut SimWorld, now: SimTime, id: BatchId, idx: usize) {
    let (cid, work) = {
        let batch = &world.batches[&id];
        (
            batch.container.expect("body without container"),
            batch.invocations[idx].work,
        )
    };
    let task = world.cluster.start_invocation_work(now, cid, work);
    world.running.insert(task, WorkKind::Body(id, idx));
    emit(
        world,
        now,
        EventKind::TaskStart {
            task: TaskKind::Body {
                batch: id.0,
                member: idx as u32,
            },
        },
    );
}

fn on_body_done(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId, idx: usize) {
    let function = sim.world.batches[&id].invocations[idx].function;
    let kind = sim.world.registry.profile(function).kind.clone();
    match kind {
        FunctionKind::Io { ops, .. } => {
            // Object operations are service latency, not host CPU.
            let delay = sim.world.cfg.client_cost.op_latency * ops as u64;
            if delay.is_zero() {
                finish_invocation(sim, engine, id, idx);
            } else {
                engine.schedule_arg_in(delay, io_ops_done, EventArg::new(id.0, idx as u64));
            }
        }
        FunctionKind::Cpu { .. } => finish_invocation(sim, engine, id, idx),
    }
}

/// Object-store round-trips finished (`arg.a` = batch id, `arg.b` = member
/// index): the invocation is done.
fn io_ops_done(sim: &mut Sim, engine: &mut Engine<Sim>, arg: EventArg) {
    finish_invocation(sim, engine, BatchId(arg.a), arg.b as usize);
    pump_cpu(&mut sim.world, engine);
}

/// Completes member `idx`'s own chain and, depending on the batch's
/// [`Completion`] mode, releases its response now or at the batch barrier.
/// The record itself is built by the [`RecordReducer`] from the emitted
/// `ExecEnd`/`InvocationComplete` events — under [`Completion::PerBatch`]
/// the barrier wait between a member's own finish and the batch end lands
/// in queuing, keeping the components contiguous.
fn finish_invocation(sim: &mut Sim, engine: &mut Engine<Sim>, id: BatchId, idx: usize) {
    let now = engine.now();
    let record = {
        let world = &mut sim.world;
        if let Some(alloc) = world.transient_clients.remove(&(id, idx)) {
            // Non-multiplexed clients die with their invocation (garbage
            // collected when the handler returns).
            world.cluster.mem_mut().free(now, alloc);
        }
        emit(
            world,
            now,
            EventKind::ExecEnd {
                batch: id.0,
                member: idx as u32,
            },
        );
        let batch = world.batches.get(&id).expect("unknown batch");
        match batch.completion {
            Completion::PerInvocation => {
                let invocation = batch.invocations[idx].id;
                Some(
                    emit(
                        world,
                        now,
                        EventKind::InvocationComplete {
                            invocation,
                            batch: Some(id.0),
                            member: Some(idx as u32),
                        },
                    )
                    .expect("completion event yields a record"),
                )
            }
            // The response is held until the whole group returns.
            Completion::PerBatch => None,
        }
    };
    if let Some(record) = record {
        let Sim { world, policy } = sim;
        policy.on_invocation_done(&mut Ctx { world, engine }, &record);
    }
    // Serial batches: hand the container to the next queued member.
    let (serial_next, batch_finished, cid, n) = {
        let batch = sim.world.batches.get_mut(&id).expect("unknown batch");
        batch.remaining -= 1;
        let next = if batch.mode == ExecMode::Serial && batch.serial_next < batch.invocations.len()
        {
            let i = batch.serial_next;
            batch.serial_next += 1;
            Some(i)
        } else {
            None
        };
        (
            next,
            batch.remaining == 0,
            batch.container.expect("no container"),
            batch.invocations.len() as u64,
        )
    };
    if let Some(next_idx) = serial_next {
        start_invocation_chain(&mut sim.world, now, id, next_idx);
    }
    if batch_finished {
        // Release barrier-held responses in member order.
        let barrier_members: Vec<faasbatch_container::ids::InvocationId> = {
            let batch = &sim.world.batches[&id];
            if batch.completion == Completion::PerBatch {
                batch.invocations.iter().map(|i| i.id).collect()
            } else {
                Vec::new()
            }
        };
        for (i, invocation) in barrier_members.into_iter().enumerate() {
            let record = emit(
                &mut sim.world,
                now,
                EventKind::InvocationComplete {
                    invocation,
                    batch: Some(id.0),
                    member: Some(i as u32),
                },
            )
            .expect("completion event yields a record");
            let Sim { world, policy } = sim;
            policy.on_invocation_done(&mut Ctx { world, engine }, &record);
        }
        sim.world.cluster.release(now, cid, n);
        let Sim { world, policy } = sim;
        policy.on_batch_done(&mut Ctx { world, engine }, cid);
    }
}

fn sampler_tick(sim: &mut Sim, engine: &mut Engine<Sim>) {
    if sim.world.done() {
        // The workload is complete; this tick only fires while the
        // harness drains in-flight pre-warm boots. Don't sample or act.
        return;
    }
    record_sample(&mut sim.world, engine.now());
    apply_scale_actions(&mut sim.world, engine);
    let period = sim.world.cfg.sample_period;
    engine.schedule_fn_in(period, sampler_tick);
}

/// Polls the trace sink for autoscaler actions and applies them. The sampler
/// tick is the designated safe point: no CPU task or policy callback is
/// mid-flight, so pre-warm launches and keep-alive changes slot in exactly
/// like policy-initiated ones. Passive sinks return nothing and the function
/// is a strict no-op — it must not touch the engine in that case, because
/// re-arming the CPU event would reorder same-instant callbacks and perturb
/// the run.
fn apply_scale_actions(world: &mut SimWorld, engine: &mut Engine<Sim>) {
    let now = engine.now();
    // The controller must see every event up to now before deciding.
    flush_events(world);
    let actions = world.trace.poll_actions(now);
    if actions.is_empty() {
        return;
    }
    for action in actions {
        match action {
            ScaleAction::Prewarm { function, count } if count > 0 => {
                emit(
                    world,
                    now,
                    EventKind::ScalePrewarm {
                        function,
                        count: count as u64,
                    },
                );
                prewarm(world, engine, function, count);
            }
            ScaleAction::Prewarm { .. } => {}
            ScaleAction::PrewarmTier {
                function,
                count,
                tier,
            } if count > 0 => {
                emit(
                    world,
                    now,
                    EventKind::ScalePrewarm {
                        function,
                        count: count as u64,
                    },
                );
                match tier {
                    PrewarmTier::Warm => prewarm(world, engine, function, count),
                    PrewarmTier::Snapshot => prewarm_snapshot(world, engine, function, count),
                }
            }
            ScaleAction::PrewarmTier { .. } => {}
            ScaleAction::SetKeepAlive {
                function,
                keep_alive,
            } => {
                emit(
                    world,
                    now,
                    EventKind::ScaleKeepAlive {
                        function,
                        keep_alive,
                    },
                );
                world.cluster.set_keep_alive(function, keep_alive);
            }
        }
    }
    pump_cpu(world, engine);
}

fn record_sample(world: &mut SimWorld, now: SimTime) {
    let kind = EventKind::HostSample {
        memory_bytes: world.cluster.mem().current_bytes(),
        busy_cores: world.cluster.cpu().busy_cores(),
        live_containers: world.cluster.live_containers(),
    };
    emit(world, now, kind);
}

/// Replays `workload` under `policy` and returns the run's report.
///
/// The run is deterministic: identical `(policy, workload, cfg)` inputs
/// produce identical reports. Every report quantity is derived from the
/// trace stream; this entry point discards the stream via the zero-cost
/// no-op sink — use [`run_simulation_traced`] to observe it.
///
/// # Panics
///
/// Panics if the simulation stalls (a policy dropped invocations) — every
/// workload invocation must eventually complete.
pub fn run_simulation(
    policy: Box<dyn Policy>,
    workload: &Workload,
    cfg: SimConfig,
    workload_label: &str,
    dispatch_interval: Option<SimDuration>,
) -> RunReport {
    run_simulation_traced(
        policy,
        workload,
        cfg,
        workload_label,
        dispatch_interval,
        Box::new(NoopSink),
    )
    .0
}

/// [`run_simulation`] with an observable event stream: every event the run
/// derives its report from also flows through `sink`, which is returned for
/// downcasting (e.g. back to a
/// [`VecSink`](faasbatch_metrics::events::VecSink) or
/// [`AuditorSink`](faasbatch_metrics::events::AuditorSink)).
pub fn run_simulation_traced(
    policy: Box<dyn Policy>,
    workload: &Workload,
    cfg: SimConfig,
    workload_label: &str,
    dispatch_interval: Option<SimDuration>,
    sink: Box<dyn TraceSink>,
) -> (RunReport, Box<dyn TraceSink>) {
    run_source_traced(
        policy,
        workload.cursor(),
        cfg,
        workload_label,
        dispatch_interval,
        sink,
    )
}

/// [`run_simulation`] over any [`InvocationSource`] — a materialised
/// [`Workload`] cursor or an on-demand
/// [`WorkloadStream`](faasbatch_trace::stream::WorkloadStream). Arrivals are
/// pulled one at a time, so memory stays bounded by in-flight state rather
/// than trace length.
pub fn run_source(
    policy: Box<dyn Policy>,
    source: impl InvocationSource,
    cfg: SimConfig,
    workload_label: &str,
    dispatch_interval: Option<SimDuration>,
) -> RunReport {
    run_source_traced(
        policy,
        source,
        cfg,
        workload_label,
        dispatch_interval,
        Box::new(NoopSink),
    )
    .0
}

/// [`run_source`] with an observable event stream (see
/// [`run_simulation_traced`]). Replaying a workload through its
/// [`cursor`](Workload::cursor) produces a stream bit-identical to the
/// materialised path: an arrival due at or before the next queued event is
/// injected first, reproducing the tie order of pre-scheduled arrivals
/// (which always held the lowest sequence numbers at their timestamp).
pub fn run_source_traced(
    policy: Box<dyn Policy>,
    mut source: impl InvocationSource,
    cfg: SimConfig,
    workload_label: &str,
    dispatch_interval: Option<SimDuration>,
    sink: Box<dyn TraceSink>,
) -> (RunReport, Box<dyn TraceSink>) {
    let mut engine: Engine<Sim> = Engine::new();
    let world = SimWorld::new(cfg, source.registry().clone(), source.total(), sink);
    let mut sim = Sim { world, policy };

    // First host sample at t = 0, then every period.
    record_sample(&mut sim.world, SimTime::ZERO);
    let period = sim.world.cfg.sample_period;
    engine.schedule_fn_in(period, sampler_tick);

    // Policy start hook.
    {
        let Sim { world, policy } = &mut sim;
        policy.on_start(&mut Ctx {
            world,
            engine: &mut engine,
        });
    }
    pump_cpu(&mut sim.world, &mut engine);

    let mut next_arrival = source.next_invocation();
    let mut last_arrival = SimTime::ZERO;
    let mut horizon_armed = false;
    loop {
        // Inject every arrival due at or before the next queued event.
        while let Some(peek) = &next_arrival {
            if engine.next_event_time().is_some_and(|t| t < peek.arrival) {
                break;
            }
            let inv = next_arrival.take().expect("peeked");
            next_arrival = source.next_invocation();
            last_arrival = inv.arrival;
            engine.advance_to(inv.arrival);
            emit(
                &mut sim.world,
                inv.arrival,
                EventKind::Arrival {
                    invocation: inv.id,
                    function: inv.function,
                },
            );
            {
                let Sim { world, policy } = &mut sim;
                policy.on_arrival(
                    &mut Ctx {
                        world,
                        engine: &mut engine,
                    },
                    &inv,
                );
            }
            pump_cpu(&mut sim.world, &mut engine);
        }
        if next_arrival.is_none() && !horizon_armed {
            horizon_armed = true;
            // Safety horizon: a healthy run finishes long before this.
            engine.set_horizon(last_arrival + SimDuration::from_secs(24 * 3600));
        }
        if sim.world.done() {
            break;
        }
        if !engine.step(&mut sim) && next_arrival.is_none() {
            // Queue drained (or horizon hit) with nothing left to inject.
            break;
        }
    }
    assert!(
        sim.world.done(),
        "simulation stalled: {}/{} invocations completed",
        sim.world.completed(),
        sim.world.total
    );
    // A speculative pre-warm (controller- or Kraken-initiated) can still be
    // booting when the final invocation completes. Keep stepping until those
    // pipelines land so the stream pairs every launch with its cold-start
    // end; runs with nothing in flight take zero extra steps, leaving their
    // reports bit-identical to the pre-drain behaviour.
    while sim.world.open_prewarms > 0 && engine.step(&mut sim) {}
    // Flush trailing journalled operations (e.g. the final release).
    drain_journals(&mut sim.world);
    flush_events(&mut sim.world);

    let world = sim.world;
    let stats = world.cluster.stats();
    let reduced = world.reducer.finish();
    let mut records = reduced.records;
    records.sort_by_key(|r| r.id);
    let makespan = reduced
        .last_completion
        .saturating_duration_since(reduced.first_arrival);
    let report = RunReport {
        scheduler: sim.policy.name(),
        workload: workload_label.to_owned(),
        dispatch_interval,
        records,
        sampler: reduced.sampler,
        provisioned_containers: stats.provisioned,
        warm_hits: stats.warm_hits,
        restored_starts: stats.restored_starts,
        snapshot_stats: world.cluster.snapshot_stats(),
        peak_live_containers: stats.peak_live,
        core_seconds: world.cluster.cpu().core_seconds(),
        core_seconds_daemon: world.cluster.cpu().group_core_seconds(world.daemon_group),
        core_seconds_platform: world
            .cluster
            .cpu()
            .group_core_seconds(world.cluster.platform_group()),
        host_cores: world.cfg.cores,
        makespan,
        clients_created: reduced.clients_created,
        client_requests: reduced.client_requests,
        client_bytes_allocated: reduced.client_bytes_allocated,
    };
    (report, world.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasbatch_metrics::events::{AuditorSink, VecSink};
    use faasbatch_simcore::rng::DetRng;
    use faasbatch_trace::workload::{cpu_workload, WorkloadConfig};

    fn tiny_workload() -> Workload {
        cpu_workload(
            &DetRng::new(3),
            &WorkloadConfig {
                total: 8,
                // Spread well past the ~1.3 s cold start so pre-warmed
                // containers have time to become warm.
                span: SimDuration::from_secs(20),
                functions: 1,
                bursts: 2,
                ..WorkloadConfig::default()
            },
        )
    }

    /// A policy that pre-warms before any arrival, so the whole workload is
    /// served warm.
    struct PrewarmEverything {
        done: bool,
    }

    impl Policy for PrewarmEverything {
        fn name(&self) -> String {
            "prewarmer".to_owned()
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let f = ctx
                .registry()
                .iter()
                .next()
                .map(|(id, _)| id)
                .expect("one function");
            ctx.prewarm(f, 5);
            self.done = true;
        }
        fn on_arrival(&mut self, ctx: &mut Ctx<'_>, invocation: &Invocation) {
            ctx.dispatch(DispatchRequest::new(
                vec![invocation.clone()],
                ExecMode::Serial,
            ));
        }
    }

    #[test]
    fn prewarmed_containers_serve_warm() {
        let w = tiny_workload();
        let report = run_simulation(
            Box::new(PrewarmEverything { done: false }),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
        );
        assert_eq!(report.records.len(), 8);
        // Five containers pre-warmed at t = 0; arrivals after the ~1.3 s
        // boot find them warm. Each cold-served arrival adds one container
        // beyond the 5 pre-warms.
        let warm_served = report.records.iter().filter(|r| !r.cold).count();
        assert!(warm_served >= 1, "nothing was served warm");
        assert_eq!(
            report.provisioned_containers,
            5 + (report.records.len() - warm_served) as u64
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_audits_clean() {
        let w = tiny_workload();
        let untraced = run_simulation(
            Box::new(PrewarmEverything { done: false }),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
        );
        let (traced, sink) = run_simulation_traced(
            Box::new(PrewarmEverything { done: false }),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
            Box::new(AuditorSink::new()),
        );
        assert_eq!(untraced, traced, "sink choice must not affect the report");
        let mut sink = sink;
        let auditor = sink
            .as_any_mut()
            .downcast_mut::<AuditorSink>()
            .expect("auditor comes back");
        assert_eq!(auditor.finish(), &[] as &[String]);
    }

    #[test]
    fn event_stream_is_deterministic_and_time_ordered() {
        let run = || {
            let w = tiny_workload();
            let (_, sink) = run_simulation_traced(
                Box::new(PrewarmEverything { done: false }),
                &w,
                crate::config::SimConfig::default(),
                "t",
                None,
                Box::new(VecSink::new()),
            );
            sink.as_any()
                .downcast_ref::<VecSink>()
                .expect("vec sink")
                .events()
                .to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed+config must give a bit-identical stream");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "time-ordered");
        assert!(a
            .iter()
            .any(|e| matches!(e.kind, EventKind::ColdStartEnd { .. })));
    }

    #[test]
    #[should_panic(expected = "dispatch of empty batch")]
    fn empty_dispatch_panics() {
        struct Bad;
        impl Policy for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn on_arrival(&mut self, ctx: &mut Ctx<'_>, _inv: &Invocation) {
                ctx.dispatch(DispatchRequest::new(Vec::new(), ExecMode::Serial));
            }
        }
        let w = tiny_workload();
        run_simulation(
            Box::new(Bad),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
        );
    }

    #[test]
    #[should_panic(expected = "batch mixes functions")]
    fn mixed_function_batch_panics() {
        struct Mixer {
            held: Vec<Invocation>,
        }
        impl Policy for Mixer {
            fn name(&self) -> String {
                "mixer".into()
            }
            fn on_arrival(&mut self, ctx: &mut Ctx<'_>, inv: &Invocation) {
                self.held.push(inv.clone());
                if self.held.len() == 2 {
                    ctx.dispatch(DispatchRequest::new(
                        std::mem::take(&mut self.held),
                        ExecMode::Parallel,
                    ));
                }
            }
        }
        let w = cpu_workload(
            &DetRng::new(4),
            &WorkloadConfig {
                total: 16,
                span: SimDuration::from_secs(1),
                functions: 4,
                bursts: 1,
                ..WorkloadConfig::default()
            },
        );
        run_simulation(
            Box::new(Mixer { held: Vec::new() }),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
        );
    }

    /// Buffers everything and dispatches one Serial batch with
    /// batch-granularity responses after all arrivals.
    struct OneSerialBatch {
        held: Vec<Invocation>,
    }

    impl Policy for OneSerialBatch {
        fn name(&self) -> String {
            "one-serial-batch".into()
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_secs(30), 0);
        }
        fn on_arrival(&mut self, _ctx: &mut Ctx<'_>, inv: &Invocation) {
            self.held.push(inv.clone());
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            let mut req = DispatchRequest::new(std::mem::take(&mut self.held), ExecMode::Serial);
            req.completion = crate::policy::Completion::PerBatch;
            ctx.dispatch(req);
        }
    }

    #[test]
    fn per_batch_serial_holds_all_responses_to_the_end() {
        let w = tiny_workload();
        let report = run_simulation(
            Box::new(OneSerialBatch { held: Vec::new() }),
            &w,
            crate::config::SimConfig::default(),
            "t",
            None,
        );
        assert_eq!(report.records.len(), 8);
        let completions: std::collections::HashSet<_> =
            report.records.iter().map(|r| r.completion).collect();
        assert_eq!(
            completions.len(),
            1,
            "all responses released at the barrier"
        );
        for r in &report.records {
            assert!(r.is_consistent(), "{r:?}");
        }
        // Exactly one container, serially reused by the whole batch.
        assert_eq!(report.provisioned_containers, 1);
    }
}
