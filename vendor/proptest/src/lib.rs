//! Offline shim of the `proptest` API surface this workspace uses (see
//! `vendor/README.md`): the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, integer-range / tuple / `collection::vec` /
//! `option::of` strategies, and a deterministic per-test runner.
//!
//! No shrinking and no persistence: a failing case panics with the sampled
//! inputs so it can be reproduced by hand. Case inputs derive from a hash
//! of the test name plus the case index, so runs are fully deterministic.
//! The case count defaults to 64 and honours `PROPTEST_CASES`.

#![forbid(unsafe_code)]

/// Strategy trait and samplers for primitive generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// `Vec` strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` roughly three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The deterministic case runner behind the `proptest!` macro.
pub mod test_runner {
    use std::fmt;
    use std::hash::{Hash, Hasher};

    /// Failure raised by `prop_assert!` / `prop_assert_eq!`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given reason.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// SplitMix64 generator; one independent stream per test case.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a stream for `(test name, case index)`.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut hasher);
            // DefaultHasher is stable within a process but not guaranteed
            // across Rust releases; determinism per-toolchain is enough
            // for reproducing failures locally.
            TestRng {
                state: hasher.finish() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// How many cases each property runs (`PROPTEST_CASES` overrides).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Runs `body` once per case and panics with the sampled inputs on the
    /// first failure.
    pub fn run_cases<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        for case in 0..case_count() {
            let mut rng = TestRng::for_case(name, case);
            let (inputs, result) = body(&mut rng);
            if let Err(e) = result {
                panic!(
                    "property `{name}` failed at case {case}: {e}\n\
                     inputs: {inputs}"
                );
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::case_count`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    let __inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg,)+
                    );
                    let __result = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    (__inputs, __result)
                });
            }
        )*
    };
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current proptest case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "assertion failed: `left == right`")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}\n  left: {:?}\n  right: {:?}",
                            format!($($fmt)+),
                            __l,
                            __r
                        )),
                    );
                }
            }
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespaced access to strategy modules, mirroring
    /// `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_in_bounds(
            xs in crate::collection::vec((1u32..6, 0u64..100), 1..20),
            cap in prop::option::of(1usize..10),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for &(a, b) in &xs {
                prop_assert!((1..6).contains(&a));
                prop_assert!(b < 100);
            }
            if let Some(c) = cap {
                prop_assert!((1..10).contains(&c));
            }
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..50);
        let a = s.sample(&mut crate::test_runner::TestRng::for_case("t", 3));
        let b = s.sample(&mut crate::test_runner::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_panics_with_inputs() {
        crate::test_runner::run_cases("always_fails", |rng| {
            let x = rng.next_u64();
            (
                format!("{x}"),
                Err(crate::test_runner::TestCaseError::fail("nope")),
            )
        });
    }
}
