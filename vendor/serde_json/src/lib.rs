//! Offline shim of the `serde_json` API surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], layered on the
//! vendored `serde` shim's `Value` tree (see `vendor/README.md`).
//!
//! The encoding is plain JSON with two shim-specific conventions inherited
//! from the `serde` shim: maps are arrays of `[key, value]` pairs, and enum
//! variants are externally tagged. Output is deterministic: objects preserve
//! field order and floats use Rust's shortest round-trip formatting.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn push_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN / Infinity; match serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space after comma, as serde_json
                    }
                }
                push_indent(out, indent, depth + 1);
                render(item, indent, depth + 1, out);
            }
            push_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            push_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid; consume it as a unit.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "42", "-7", "1.5", "\"hi\\n\""] {
            let v: Value = from_str(json).unwrap();
            let back = to_string(&v).unwrap();
            assert_eq!(back, json);
        }
    }

    #[test]
    fn nested_round_trip() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_output_indents() {
        let v: Value = from_str(r#"{"a":[1]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".to_string()));
    }
}
