//! Offline shim of the `parking_lot` API surface this workspace uses:
//! `Mutex` and `RwLock` without lock poisoning (see `vendor/README.md`).
//! Wraps `std::sync` primitives and recovers from poisoning on panic, which
//! matches parking_lot's observable behavior for this codebase.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
