//! Offline shim of the `bytes` API surface this workspace uses: an
//! immutable, cheaply clonable byte container (see `vendor/README.md`).
//! Backed by `Arc<[u8]>` rather than upstream's vtable machinery — clones
//! share one allocation, which is all the workspace relies on.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static byte slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::from_static(b"v"), Bytes::from(vec![b'v']));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
        assert_eq!(Bytes::from_static(b"abc").first(), Some(&b'a'));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }
}
