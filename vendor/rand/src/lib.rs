//! Offline shim of the tiny `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! minimal reimplementations of its external dependencies (see
//! `vendor/README.md`). This crate provides `StdRng`, the `Rng` / `RngCore` /
//! `SeedableRng` traits, and uniform range sampling. The generator is
//! xoshiro256++ (not upstream's ChaCha12), so raw streams differ from real
//! `rand` — irrelevant here, since the workspace only requires determinism
//! for a fixed toolchain, not stream compatibility.

#![forbid(unsafe_code)]

/// Core random-number source: raw word output.
pub trait RngCore {
    /// Next 32 raw bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Debiased via 128-bit multiply-shift (Lemire).
                let wide = (rng.next_u64() as u128) * (span as u128);
                self.start + ((wide >> 64) as u64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let wide = (rng.next_u64() as u128) * (span as u128);
                lo + ((wide >> 64) as u64) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let y = r.gen_range(10u64..20);
            assert!((10..20).contains(&y));
            let z = r.gen_range(0usize..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
