//! Offline shim of serde's derive macros, targeting the `Value`-based traits
//! in the vendored `serde` shim (see `vendor/README.md`).
//!
//! Implemented with only the compiler-provided `proc_macro` crate (no
//! syn/quote, which are unavailable offline): the input item is parsed with a
//! small token-tree walker, and the impl is generated as a string and
//! re-parsed. Supports the shapes this workspace derives on — named structs,
//! tuple structs (newtypes are transparent), unit structs, and enums with
//! unit / struct / tuple variants. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    body: Body,
}

fn is_ident(tt: &TokenTree, word: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == word)
}

/// Consumes leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    loop {
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the `[...]` group.
                pos += 2;
            }
            Some(tt) if is_ident(tt, "pub") => {
                pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1;
                    }
                }
            }
            _ => return pos,
        }
    }
}

/// Counts top-level comma-separated entries, treating `<...>` as nesting so
/// commas inside generic arguments don't split fields.
fn count_top_level_entries(tokens: &[TokenTree]) -> usize {
    let mut angle_depth = 0i32;
    let mut entries = 0usize;
    let mut in_entry = false;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                in_entry = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                in_entry = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if in_entry {
                    entries += 1;
                }
                in_entry = false;
            }
            _ => in_entry = true,
        }
    }
    if in_entry {
        entries += 1;
    }
    entries
}

/// Extracts field names from the tokens of a braced field list.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attrs_and_vis(tokens, pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        fields.push(name.to_string());
        pos += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(pos) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attrs_and_vis(tokens, pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Tuple(count_top_level_entries(&inner))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional `= discriminant` and the trailing comma.
        while let Some(tt) = tokens.get(pos) {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = skip_attrs_and_vis(&tokens, 0);
    let is_enum = match tokens.get(pos) {
        Some(tt) if is_ident(tt, "struct") => false,
        Some(tt) if is_ident(tt, "enum") => true,
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    pos += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
        panic!("serde_derive shim: expected item name");
    };
    let name = name.to_string();
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (`{name}`)");
        }
    }
    // Find the body group (brace for named/enum, paren for tuple) or `;`.
    for tt in &tokens[pos..] {
        match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let body = if is_enum {
                    Body::Enum(parse_variants(&inner))
                } else {
                    Body::NamedStruct(parse_named_fields(&inner))
                };
                return Item { name, body };
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                return Item {
                    name,
                    body: Body::TupleStruct(count_top_level_entries(&inner)),
                };
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                return Item {
                    name,
                    body: Body::UnitStruct,
                };
            }
            _ => {}
        }
    }
    Item {
        name,
        body: Body::UnitStruct,
    }
}

/// Derives `serde::Serialize` (shim) for non-generic structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binders = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => ::serde::Value::Map(::std::vec![(\"{vn}\".to_string(), ::serde::Value::Map(::std::vec![{}]))]),\n",
                            entries.join(", ")
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let parts: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", parts.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    );
    out.parse()
        .expect("serde_derive shim: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (shim) for non-generic structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(value.get_field(\"{f}\")?)?")
                })
                .collect();
            format!(
                "::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Body::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                 ::core::result::Result::Ok({name}({})),\n\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected {n}-element array for `{name}`, got {{}}\", __other.kind()))),\n}}",
                inits.join(", ")
            )
        }
        Body::UnitStruct => format!(
            "match value {{\n\
             ::serde::Value::Null => ::core::result::Result::Ok({name}),\n\
             __other => ::core::result::Result::Err(::serde::DeError::new(\
             ::std::format!(\"expected null for `{name}`, got {{}}\", __other.kind()))),\n}}"
        ),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__inner.get_field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __inner {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {n} => \
                             ::core::result::Result::Ok({name}::{vn}({})),\n\
                             __other => ::core::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"expected {n}-element array for `{name}::{vn}`, got {{}}\", __other.kind()))),\n}},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n}},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n}}\n}},\n\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected variant of `{name}`, got {{}}\", __other.kind()))),\n}}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    );
    out.parse()
        .expect("serde_derive shim: generated Deserialize impl failed to parse")
}
