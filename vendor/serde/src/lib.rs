//! Offline shim of the `serde` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! minimal reimplementations of its external dependencies (see
//! `vendor/README.md`). Real serde is a visitor-based framework; this shim
//! instead converts through a concrete [`Value`] tree, which is all the
//! workspace needs (`#[derive(Serialize, Deserialize)]` + `serde_json`
//! round-trips). The derive macros live in the sibling `serde_derive` shim
//! and target exactly these traits.
//!
//! Wire-format notes (internally consistent, not serde-compatible in every
//! corner): newtype structs are transparent, enums are externally tagged,
//! and maps serialize as sequences of `[key, value]` pairs so non-string
//! keys round-trip.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange point between
/// [`Serialize`], [`Deserialize`], and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field, failing with a descriptive error.
    pub fn get_field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Seq(
        entries
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<(K, V)>, DeError> {
    let Value::Seq(items) = value else {
        return Err(DeError::new(format!(
            "expected map (as pair array), got {}",
            value.kind()
        )));
    };
    items
        .iter()
        .map(|item| match item {
            Value::Seq(pair) if pair.len() == 2 => {
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            }
            other => Err(DeError::new(format!(
                "expected [key, value] pair, got {}",
                other.kind()
            ))),
        })
        .collect()
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(map_entries_from_value(value)?.into_iter().collect())
    }
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize + Ord + std::hash::Hash + Eq,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_value(&self) -> Value {
        // Sort for a deterministic encoding regardless of hash order.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        map_to_value(entries.into_iter())
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(map_entries_from_value(value)?.into_iter().collect())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(value.get_field("secs")?)?;
        let nanos = u32::from_value(value.get_field("nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let m: BTreeMap<u32, String> = [(1, "a".to_string()), (2, "b".to_string())].into();
        assert_eq!(BTreeMap::from_value(&m.to_value()).unwrap(), m);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn missing_field_reports_name() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        let err = v.get_field("b").unwrap_err();
        assert!(err.to_string().contains('b'));
    }
}
