//! Offline shim of the `criterion` API surface this workspace uses (see
//! `vendor/README.md`): `Criterion`, `Bencher::iter` / `iter_batched`,
//! benchmark groups, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is a plain wall-clock median over a small adaptive sample — no
//! statistics engine, plots, or baselines. Under `cargo test` (which runs
//! `harness = false` bench targets with `--test`) each routine executes
//! once as a smoke test, so benches stay fast in CI.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Hint per-sample input size for [`Bencher::iter_batched`]; the shim only
/// uses it to pick how many routine calls share one timing sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per sample.
    SmallInput,
    /// Medium inputs: a few per sample.
    MediumInput,
    /// Large inputs: one per sample.
    LargeInput,
}

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments; `--test` (passed by
    /// `cargo test` to `harness = false` bench binaries) switches every
    /// routine to a single smoke-test execution.
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test" || a == "--list");
        Criterion {
            test_mode,
            ..Criterion::default()
        }
    }

    /// Mirrors criterion's builder hook; the shim has no CLI options beyond
    /// `--test`, so this is a pass-through.
    pub fn configure_from_args(self) -> Self {
        let test_mode = self.test_mode || std::env::args().any(|a| a == "--test");
        Criterion { test_mode, ..self }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            per_iter: None,
        };
        f(&mut bencher);
        match bencher.per_iter {
            Some(d) => println!("bench: {name} ... {} ns/iter", d.as_nanos()),
            None => println!("bench: {name} ... ok (test mode)"),
        }
        self
    }

    /// Opens a named group; benchmarks inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    per_iter: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, adapting the iteration count so each sample runs
    /// long enough for the clock to resolve it.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm up and find an iteration count that takes >= ~1ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            if start.elapsed() >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        samples.sort_unstable();
        self.per_iter = Some(samples[samples.len() / 2]);
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let mut samples: Vec<Duration> = (0..self.sample_size.max(4))
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        self.per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_timing() {
        let mut c = Criterion {
            test_mode: false,
            sample_size: 3,
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 2,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("x", |b| {
            b.iter_batched(|| 2, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
