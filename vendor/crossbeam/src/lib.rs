//! Offline shim of the `crossbeam::channel` API surface this workspace
//! uses: MPMC `bounded` / `unbounded` channels with clonable senders *and*
//! receivers, blocking `recv`, `recv_timeout`, and a blocking `iter()`
//! (see `vendor/README.md`). Built on a `Mutex<VecDeque>` + `Condvar`
//! pair — adequate for the simulation's thread counts, with none of
//! upstream's lock-free machinery.

#![forbid(unsafe_code)]

/// MPMC channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signals receivers when an item arrives or all senders leave.
        recv_cond: Condvar,
        /// Signals bounded senders when capacity frees up or receivers leave.
        send_cond: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            recv_cond: Condvar::new(),
            send_cond: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let inner = &self.inner;
            let mut queue = inner.lock();
            loop {
                if inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match inner.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = inner
                            .send_cond
                            .wait(queue)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            inner.recv_cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake receivers so they observe EOF.
                let _guard = self.inner.lock();
                self.inner.recv_cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let inner = &self.inner;
            let mut queue = inner.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    inner.send_cond.notify_one();
                    return Ok(msg);
                }
                if inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = inner
                    .recv_cond
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Like [`recv`](Self::recv) but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let inner = &self.inner;
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = inner.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    inner.send_cond.notify_one();
                    return Ok(msg);
                }
                if inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = inner
                    .recv_cond
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let msg = self.inner.lock().pop_front();
            if msg.is_some() {
                self.inner.send_cond.notify_one();
            }
            msg
        }

        /// Blocking iterator over messages until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: wake blocked bounded senders to fail.
                let _guard = self.inner.lock();
                self.inner.send_cond.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || tx.send(3).map(|_| ()));
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap().is_ok());
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_reports_timeout_then_disconnect() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::unbounded();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
