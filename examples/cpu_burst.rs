//! CPU-intensive burst, live: the paper's Sharing-vs-Monopoly observation
//! (Fig. 1) demonstrated with real `fib` work on real threads — inline
//! parallel expansion inside one container performs like a container per
//! invocation, while using a fraction of the containers.
//!
//! Run with: `cargo run --release --example cpu_burst`

use faasbatch::container::live::{run_expanded, ExpandMode, Job};
use faasbatch::trace::fib::fib;

fn jobs(n: usize, fib_n: u32) -> Vec<Job> {
    (0..n)
        .map(|_| {
            Box::new(move || {
                std::hint::black_box(fib(fib_n));
            }) as Job
        })
        .collect()
}

fn main() {
    println!("concurrency | sharing (1 container) | monopoly (N containers) | ratio");
    println!("----------- | --------------------- | ----------------------- | -----");
    for n in [8, 16, 32, 64, 128] {
        let sharing = run_expanded(ExpandMode::Sharing, jobs(n, 28));
        let monopoly = run_expanded(ExpandMode::Monopoly, jobs(n, 28));
        let s = sharing.makespan.as_secs_f64() * 1e3;
        let m = monopoly.makespan.as_secs_f64() * 1e3;
        println!("{n:>11} | {s:>19.1}ms | {m:>21.1}ms | {:.3}", s / m);
    }
    println!("\nSharing keeps pace with Monopoly at every concurrency — the");
    println!("motivating observation behind FaaSBatch (paper Fig. 1).");
}
