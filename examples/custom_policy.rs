//! Writing your own scheduler: the `Policy` trait makes the harness a
//! test-bed for new serverless scheduling ideas, with containers, cold
//! starts, CPU contention, and metrics already handled.
//!
//! This example implements **Debouncer**, a toy alternative to FaaSBatch's
//! fixed window: instead of dispatching every `W` milliseconds, it dispatches
//! a function's pending group as soon as that function has been quiet for a
//! short gap (or a maximum hold time expires) — then compares it against
//! FaaSBatch and Vanilla on the same workload.
//!
//! Run with: `cargo run --release --example custom_policy`

use faasbatch::container::ids::FunctionId;
use faasbatch::core::policy::{run_faasbatch, FaasBatchConfig};
use faasbatch::metrics::report::text_table;
use faasbatch::schedulers::config::SimConfig;
use faasbatch::schedulers::harness::run_simulation;
use faasbatch::schedulers::policy::{Ctx, DispatchRequest, ExecMode, Policy};
use faasbatch::schedulers::vanilla::Vanilla;
use faasbatch::simcore::rng::DetRng;
use faasbatch::simcore::time::{SimDuration, SimTime};
use faasbatch::trace::workload::{cpu_workload, Invocation, WorkloadConfig};
use std::collections::BTreeMap;

/// Dispatch a function's pending group once it has been quiet for
/// `quiet_gap`, or after `max_hold` at the latest.
struct Debouncer {
    quiet_gap: SimDuration,
    max_hold: SimDuration,
    pending: BTreeMap<FunctionId, (SimTime, SimTime, Vec<Invocation>)>, // (first, last, group)
    ticking: bool,
}

impl Debouncer {
    const TICK: u64 = 0;

    fn new() -> Self {
        Debouncer {
            quiet_gap: SimDuration::from_millis(40),
            max_hold: SimDuration::from_millis(400),
            pending: BTreeMap::new(),
            ticking: false,
        }
    }

    fn flush_ready(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let ready: Vec<FunctionId> = self
            .pending
            .iter()
            .filter(|(_, (first, last, _))| {
                now.saturating_duration_since(*last) >= self.quiet_gap
                    || now.saturating_duration_since(*first) >= self.max_hold
            })
            .map(|(&f, _)| f)
            .collect();
        for f in ready {
            let (_, _, group) = self.pending.remove(&f).expect("just listed");
            let mut req = DispatchRequest::new(group, ExecMode::Parallel);
            req.multiplex_clients = true;
            ctx.dispatch(req);
        }
    }
}

impl Policy for Debouncer {
    fn name(&self) -> String {
        "debouncer".to_owned()
    }

    fn on_arrival(&mut self, ctx: &mut Ctx<'_>, invocation: &Invocation) {
        let now = ctx.now();
        let entry = self
            .pending
            .entry(invocation.function)
            .or_insert_with(|| (now, now, Vec::new()));
        entry.1 = now;
        entry.2.push(invocation.clone());
        if !self.ticking {
            self.ticking = true;
            ctx.set_timer(self.quiet_gap, Self::TICK);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.flush_ready(ctx);
        if self.pending.is_empty() && ctx.all_done() {
            self.ticking = false;
        } else {
            ctx.set_timer(self.quiet_gap, Self::TICK);
        }
    }
}

fn main() {
    let w = cpu_workload(&DetRng::new(2023), &WorkloadConfig::default());
    let cfg = SimConfig::default();
    let vanilla = run_simulation(Box::new(Vanilla::new()), &w, cfg.clone(), "cpu", None);
    let debouncer = run_simulation(Box::new(Debouncer::new()), &w, cfg.clone(), "cpu", None);
    let faasbatch = run_faasbatch(&w, cfg, FaasBatchConfig::default(), "cpu");
    // Any new policy gets the built-in correctness bar for free.
    faasbatch::schedulers::testkit::assert_invariants(&w, &debouncer);

    let rows: Vec<Vec<String>> = [&vanilla, &debouncer, &faasbatch]
        .iter()
        .map(|r| {
            vec![
                r.scheduler.clone(),
                format!("{}", r.scheduling_cdf().mean()),
                format!("{}", r.end_to_end_cdf().mean()),
                r.provisioned_containers.to_string(),
                format!("{:.0} MB", r.mean_memory_bytes() / (1 << 20) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "scheduler",
                "sched mean",
                "e2e mean",
                "containers",
                "mem mean"
            ],
            &rows,
        )
    );
    println!("\nDebouncer trades a little batching efficiency for lower scheduling");
    println!("delay on sparse functions — ~60 lines of policy code on the harness.");
}
