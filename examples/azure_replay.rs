//! Azure-trace replay: rebuild the paper's exact methodology from the real
//! Azure Functions dataset when you have it, or from the calibrated
//! synthetic generator when you don't.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example azure_replay -- \
//!     [invocations.csv] [durations.csv] [minute]
//! ```
//!
//! With no arguments, a synthetic Azure-like minute is generated instead
//! (same statistics, no dataset required).

use faasbatch::core::policy::{run_faasbatch, FaasBatchConfig};
use faasbatch::metrics::report::text_table;
use faasbatch::schedulers::config::SimConfig;
use faasbatch::schedulers::harness::run_simulation;
use faasbatch::schedulers::vanilla::Vanilla;
use faasbatch::simcore::rng::DetRng;
use faasbatch::trace::azure::{parse_durations_csv, parse_invocations_csv, workload_from_minute};
use faasbatch::trace::workload::{cpu_workload, Workload, WorkloadConfig};
use std::fs::File;

fn load_workload() -> Workload {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 3 {
        let invocations = File::open(&args[1]).expect("invocations CSV exists");
        let durations = File::open(&args[2]).expect("durations CSV exists");
        let minute: usize = args
            .get(3)
            .map_or(1330, |m| m.parse().expect("numeric minute"));
        let days = parse_invocations_csv(invocations).expect("valid invocations CSV");
        let rows = parse_durations_csv(durations).expect("valid durations CSV");
        println!(
            "loaded {} function-day rows, {} duration rows; replaying minute {minute} (22:10 = 1330)",
            days.len(),
            rows.len()
        );
        workload_from_minute(&DetRng::new(2023), &days, &rows, minute)
    } else {
        println!("no trace files supplied — using the calibrated synthetic minute");
        cpu_workload(&DetRng::new(2023), &WorkloadConfig::default())
    }
}

fn main() {
    let workload = load_workload();
    println!(
        "replaying {} invocations of {} functions\n",
        workload.len(),
        workload.registry().len()
    );
    let cfg = SimConfig::default();
    let vanilla = run_simulation(
        Box::new(Vanilla::new()),
        &workload,
        cfg.clone(),
        "azure",
        None,
    );
    let faasbatch = run_faasbatch(&workload, cfg, FaasBatchConfig::default(), "azure");
    let rows: Vec<Vec<String>> = [&vanilla, &faasbatch]
        .iter()
        .map(|r| {
            vec![
                r.scheduler.clone(),
                format!("{}", r.end_to_end_cdf().mean()),
                format!("{}", r.end_to_end_cdf().quantile(0.99)),
                r.provisioned_containers.to_string(),
                format!("{:.0} MB", r.mean_memory_bytes() / (1 << 20) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &["scheduler", "e2e mean", "e2e p99", "containers", "mem mean"],
            &rows
        )
    );
}
