//! Full simulated comparison: Vanilla, SFS, Kraken, and FaaSBatch replaying
//! the same Azure-style bursty minute on a 32-vCPU worker — the paper's §V
//! headline experiment in one command.
//!
//! Run with: `cargo run --release --example scheduler_comparison`

use faasbatch::core::policy::{run_faasbatch, FaasBatchConfig};
use faasbatch::metrics::report::{percent_reduction, text_table};
use faasbatch::schedulers::config::SimConfig;
use faasbatch::schedulers::harness::run_simulation;
use faasbatch::schedulers::kraken::{Kraken, KrakenCalibration};
use faasbatch::schedulers::sfs::Sfs;
use faasbatch::schedulers::vanilla::Vanilla;
use faasbatch::simcore::rng::DetRng;
use faasbatch::simcore::time::SimDuration;
use faasbatch::trace::workload::{io_workload, WorkloadConfig};

fn main() {
    let window = SimDuration::from_millis(200);
    let workload = io_workload(
        &DetRng::new(7),
        &WorkloadConfig {
            total: 400,
            span: SimDuration::from_secs(30),
            functions: 8,
            bursts: 4,
            ..WorkloadConfig::default()
        },
    );
    let cfg = SimConfig::default();

    let vanilla = run_simulation(Box::new(Vanilla::new()), &workload, cfg.clone(), "io", None);
    let sfs = run_simulation(Box::new(Sfs::new()), &workload, cfg.clone(), "io", None);
    let kraken = run_simulation(
        Box::new(Kraken::new(
            KrakenCalibration::from_vanilla(&vanilla),
            window,
        )),
        &workload,
        cfg.clone(),
        "io",
        Some(window),
    );
    let faasbatch = run_faasbatch(&workload, cfg, FaasBatchConfig::default(), "io");

    let reports = [&vanilla, &sfs, &kraken, &faasbatch];
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.scheduler.clone(),
                format!("{}", r.end_to_end_cdf().mean()),
                format!("{}", r.end_to_end_cdf().quantile(0.99)),
                r.provisioned_containers.to_string(),
                format!("{:.0} MB", r.mean_memory_bytes() / (1 << 20) as f64),
                format!("{:.1}%", r.mean_cpu_utilization() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "scheduler",
                "e2e mean",
                "e2e p99",
                "containers",
                "mem mean",
                "cpu util"
            ],
            &rows,
        )
    );
    println!(
        "FaaSBatch cuts Vanilla's mean latency by {:.1}% and its memory by {:.1}%.",
        percent_reduction(
            vanilla.end_to_end_cdf().mean().as_secs_f64(),
            faasbatch.end_to_end_cdf().mean().as_secs_f64(),
        ),
        percent_reduction(vanilla.mean_memory_bytes(), faasbatch.mean_memory_bytes()),
    );
}
