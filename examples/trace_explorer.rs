//! Workload explorer: generate the Azure-style traces the evaluation uses
//! and inspect their statistics — duration buckets, arrival burstiness,
//! per-function popularity, and blob inter-access times.
//!
//! Run with: `cargo run --example trace_explorer`

use faasbatch::metrics::report::text_table;
use faasbatch::simcore::rng::DetRng;
use faasbatch::simcore::time::SimDuration;
use faasbatch::trace::arrival::{bin_counts, burstiness};
use faasbatch::trace::blob::BlobIatModel;
use faasbatch::trace::duration::DurationDistribution;
use faasbatch::trace::workload::{cpu_workload, WorkloadConfig};

fn main() {
    let rng = DetRng::new(42);
    let w = cpu_workload(&rng, &WorkloadConfig::default());

    println!(
        "== workload: {} invocations, {} functions ==\n",
        w.len(),
        w.registry().len()
    );

    // Popularity skew.
    let mut counts = vec![0usize; w.registry().len()];
    for inv in w.invocations() {
        counts[inv.function.index() as usize] += 1;
    }
    let rows: Vec<Vec<String>> = w
        .registry()
        .iter()
        .map(|(id, p)| {
            vec![
                p.name.clone(),
                counts[id.index() as usize].to_string(),
                format!(
                    "{:.1}%",
                    100.0 * counts[id.index() as usize] as f64 / w.len() as f64
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&["function", "invocations", "share"], &rows)
    );

    // Duration buckets vs Fig. 9.
    let dist = DurationDistribution::azure_fig9();
    let works: Vec<SimDuration> = w.invocations().iter().map(|i| i.work).collect();
    let hist = dist.histogram(&works);
    let rows: Vec<Vec<String>> = dist
        .buckets()
        .iter()
        .zip(&hist)
        .map(|(b, h)| {
            vec![
                format!("[{:.0}, {:.0}) ms", b.lo_ms, b.hi_ms),
                format!("{:.1}%", b.probability * 100.0),
                format!("{:.1}%", h * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&["duration bucket", "Fig. 9", "this trace"], &rows)
    );

    // Burstiness.
    let arrivals: Vec<_> = w.invocations().iter().map(|i| i.arrival).collect();
    let per_sec = bin_counts(
        &arrivals,
        SimDuration::from_secs(1),
        SimDuration::from_secs(61),
    );
    println!(
        "arrivals: peak {}/s, burstiness {:.1} (peak/mean)\n",
        per_sec.iter().max().unwrap(),
        burstiness(&per_sec)
    );

    // Blob IaT model.
    let blob = BlobIatModel::azure_fig3();
    println!(
        "blob inter-access CDF: {:.0}% < 100ms, {:.0}% < 1s (Fig. 3 landmarks)",
        blob.cdf(SimDuration::from_millis(100)) * 100.0,
        blob.cdf(SimDuration::from_secs(1)) * 100.0,
    );
}
