//! Quickstart: register a function on the live FaaSBatch platform, fire a
//! concurrent burst, and watch the Invoke Mapper batch it into one warm
//! container.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use faasbatch::core::platform::PlatformBuilder;
use faasbatch::trace::fib::fib;
use std::time::Duration;

fn main() {
    // A platform with a 50 ms dispatch window (scaled down from the paper's
    // 200 ms so the demo is snappy).
    let platform = PlatformBuilder::new()
        .window(Duration::from_millis(50))
        .cold_start_delay(Duration::from_millis(25))
        .register("fib-28", |env| {
            let n = env
                .payload
                .first()
                .copied()
                .map(u32::from)
                .unwrap_or(28)
                .clamp(20, 32);
            std::hint::black_box(fib(n));
        })
        .start();

    println!("== single invocation (cold start) ==");
    let outcome = platform
        .invoke("fib-28", Bytes::from_static(&[28]))
        .expect("registered")
        .wait();
    println!(
        "cold={} queued={:?} execution={:?}",
        outcome.cold, outcome.queued, outcome.execution
    );

    println!("\n== burst of 32 concurrent invocations ==");
    let tickets: Vec<_> = (0..32)
        .map(|_| {
            platform
                .invoke("fib-28", Bytes::from_static(&[26]))
                .expect("registered")
        })
        .collect();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let cold = outcomes.iter().filter(|o| o.cold).count();
    let mean_exec: Duration =
        outcomes.iter().map(|o| o.execution).sum::<Duration>() / outcomes.len() as u32;
    println!(
        "{} invocations, {} cold, mean execution {:?}",
        outcomes.len(),
        cold,
        mean_exec
    );
    println!(
        "containers created so far: {}",
        platform
            .stats()
            .containers_created
            .load(std::sync::atomic::Ordering::Relaxed)
    );
    println!("\nThe burst shares warm containers instead of starting 32 — that is");
    println!("the Invoke Mapper + Inline-Parallel Producer at work.");
}
