//! I/O pipeline on the live platform: functions create storage clients
//! (the paper's Listing 1) and move objects through a bucket. Running the
//! same burst with and without the Resource Multiplexer shows the
//! redundant-resource effect of §II-B first-hand.
//!
//! Run with: `cargo run --release --example io_pipeline`

use bytes::Bytes;
use faasbatch::core::platform::{FaasBatchPlatform, PlatformBuilder};
use faasbatch::storage::client::ClientConfig;
use faasbatch::storage::object_store::ObjectStore;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const BURST: usize = 24;

fn build(multiplex: bool, store: ObjectStore) -> FaasBatchPlatform {
    PlatformBuilder::new()
        .window(Duration::from_millis(30))
        .multiplex(multiplex)
        .store(store)
        .register("etl", |env| {
            // Listing 1: create the client (expensive!), then do the work.
            let client = env
                .container
                .storage_client(&ClientConfig::for_bucket("artifacts"));
            let key = format!("record/{}", env.payload.len());
            client
                .put(&key, env.payload.clone())
                .expect("bucket exists");
            let _ = client.get(&key).expect("just written");
        })
        .start()
}

fn run_burst(platform: &FaasBatchPlatform) -> (Duration, u64) {
    let start = Instant::now();
    let tickets: Vec<_> = (0..BURST)
        .map(|i| {
            platform
                .invoke("etl", Bytes::from(vec![0u8; i + 1]))
                .expect("registered")
        })
        .collect();
    for t in tickets {
        t.wait();
    }
    platform.drain().expect("running");
    (
        start.elapsed(),
        platform.stats().clients_created.load(Ordering::Relaxed),
    )
}

fn main() {
    for multiplex in [false, true] {
        let store = ObjectStore::new();
        store.create_bucket("artifacts").expect("fresh store");
        let platform = build(multiplex, store.clone());
        let (elapsed, clients) = run_burst(&platform);
        println!(
            "multiplexer {}: burst of {BURST} took {elapsed:?}, {clients} clients created, {} objects stored",
            if multiplex { "ON " } else { "OFF" },
            store.object_count(),
        );
    }
    println!("\nWith the multiplexer ON the whole burst shares one client per");
    println!("container, eliminating the repeated-creation cost of Fig. 4/5.");
}
